"""Persistent MDD objects: tiles as BLOBs plus a spatial index.

This is the storage manager of Section 5: an MDD object is a set of
multidimensional tiles and an index on tiles; cells of each tile are
stored in a separate BLOB.  :class:`StoredMDD` binds together

* an :class:`~repro.core.mddtype.MDDType`,
* a tile table (stable tile id → domain, BLOB id, codec),
* a :class:`~repro.index.base.SpatialIndex` on the tile domains, and
* the shared :class:`~repro.storage.disk.SimulatedDisk` /
  :class:`~repro.storage.bufferpool.BufferPool` of the owning
  :class:`Database`.

Reads produce a dense result array and a :class:`QueryTiming` with the
paper's ``t_ix`` / ``t_o`` / ``t_cpu`` breakdown.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.errors import (
    BlobNotFoundError,
    DomainError,
    QueryError,
    StorageError,
)
from repro.core.geometry import MInterval
from repro.core.mdd import Tile
from repro.core.mddtype import MDDType
from repro.core.order import row_major_key
from repro.index.base import IndexEntry, SpatialIndex
from repro.index.rplustree import RPlusTreeIndex
from repro.index.zonemap import (
    AGG_FUNCS,
    CellPredicate,
    TilePruner,
    TileSynopsis,
    aggregate_eligible,
    combine_aggregate,
    compute_synopsis,
    constant_synopsis,
    note_synopsis_answered,
    note_tiles_pruned,
    partial_aggregate_eligible,
)
from repro.query.timing import LoadStats, QueryTiming
from repro.storage.backends import MemoryBlobStore
from repro.storage.blob import BlobStore
from repro.storage.bufferpool import BufferPool
from repro.storage.decodedcache import DecodedTileCache
from repro.storage.disk import CpuParameters, DiskParameters, SimulatedDisk
from repro.storage.faults import FaultInjector
from repro.storage.ingest import encode_payload, encode_tiles
from repro.storage.latch import OrderedLatch
from repro.storage.mvcc import (
    EpochManager,
    ObjectVersion,
    Snapshot,
    note_live_versions,
)
from repro.storage.pipeline import fetch_tile, fetch_tile_partials, fetch_tiles
from repro.storage.wal import WriteAheadLog

IndexFactory = Callable[[int, int], SpatialIndex]

#: Durability modes: no log, logged, logged + synchronous commits.
DURABILITY_MODES = ("none", "wal", "wal+fsync")

_TILES_STORED = obs.counter("tilestore.tiles_stored", "Tiles written as BLOBs")
_WRITE_THROUGH = obs.counter(
    "cache.decoded.write_throughs",
    "Decoded tiles admitted to the cache on the write path",
)
_TILES_LOADED = obs.counter("tilestore.tiles_loaded", "Tiles fetched for reads")
_READS = obs.counter("tilestore.reads", "Range reads served")
_CELLS_FETCHED = obs.counter("tilestore.cells_fetched", "Cells in fetched tiles")
_CELLS_RETURNED = obs.counter("tilestore.cells_returned", "Cells in query results")
_READ_MS = obs.histogram(
    "tilestore.read_ms", "Modelled t_totalcpu milliseconds per range read"
)


def default_index_factory(dim: int, page_size: int) -> SpatialIndex:
    """The system default: an R+-tree-like index."""
    return RPlusTreeIndex(dim, page_size=page_size)


@dataclass
class TileEntry:
    """Tile-table row: where one tile's cells live."""

    tile_id: int
    domain: MInterval
    blob_id: int
    codec: str = "none"
    virtual: bool = False


class StoredMDD:
    """A persistent MDD object backed by BLOB tiles and a spatial index."""

    def __init__(
        self,
        database: "Database",
        mdd_type: MDDType,
        name: str,
        index: Optional[SpatialIndex] = None,
        collection: str = "",
    ) -> None:
        self.database = database
        self.mdd_type = mdd_type
        self.name = name
        self.collection = collection
        self.index = index if index is not None else database.make_index(
            mdd_type.dim
        )
        self._tiles: dict[int, TileEntry] = {}
        self._zones: dict[int, TileSynopsis] = {}
        self._next_tile_id = 1
        self._current_domain: Optional[MInterval] = None
        # Readers outside a transaction go through this immutable version
        # (DESIGN §11).  Outside a transaction it aliases the working
        # containers above; a transaction's first mutation clones the
        # working containers (copy-on-write), leaving the published
        # version frozen until commit republishes.
        self._published = ObjectVersion(
            tiles=self._tiles,
            index=self.index,
            domain=None,
            epoch=0,
            zones=self._zones,
        )

    # -- MVCC plumbing (DESIGN §11) ------------------------------------

    def _touch(self) -> None:
        """Copy-on-write hook: call before any working-state mutation.

        Inside a transaction, the first touch saves the published version
        for rollback and replaces the working containers with private
        clones, so readers of :attr:`_published` never see mid-transaction
        state.  Outside a transaction (catalog reload, recovery replay)
        this is a no-op — those paths republish explicitly when done.
        """
        txn = self.database._current_txn()
        if txn is None or self in txn.dirtied:
            return
        txn.dirtied[self] = (self._published, self._next_tile_id)
        self._tiles = {
            tile_id: replace(entry) for tile_id, entry in self._tiles.items()
        }
        # Synopses are immutable; a shallow copy of the mapping suffices.
        self._zones = dict(self._zones)
        self.index = copy.deepcopy(self.index)

    def _publish(self, epoch: int) -> None:
        """Freeze the working state as the readable version (at commit)."""
        self._published = ObjectVersion(
            tiles=self._tiles,
            index=self.index,
            domain=self._current_domain,
            epoch=epoch,
            zones=self._zones,
        )

    def _restore_version(
        self, version: ObjectVersion, next_tile_id: int
    ) -> None:
        """Roll the working state back to a saved version (abort path)."""
        self._tiles = dict(version.tiles)
        self._zones = dict(version.zones)
        self.index = version.index
        self._current_domain = version.domain
        self._next_tile_id = next_tile_id
        self._published = version

    def _reader_view(
        self, version: Optional[ObjectVersion]
    ) -> tuple:
        """``(tiles, index, domain, zones, pinned_epoch)`` for one read.

        An explicit ``version`` (snapshot read) is used as-is — the
        snapshot holds the pin.  A thread inside its own transaction
        reads the working state (read-your-own-writes).  Anyone else
        pins the current epoch and reads the published version; the
        caller must unpin the returned epoch when done.  ``zones`` comes
        from the same version as ``tiles``, so a synopsis can never be
        stale relative to the tile it describes.
        """
        if version is not None:
            return (
                version.tiles,
                version.index,
                version.domain,
                version.zones,
                None,
            )
        if self.database._current_txn() is not None:
            return (
                self._tiles,
                self.index,
                self._current_domain,
                self._zones,
                None,
            )
        epoch = self.database.epoch
        with epoch.latch:
            pin = epoch.pin_locked()
            published = self._published
        return (
            published.tiles,
            published.index,
            published.domain,
            published.zones,
            pin,
        )

    def _log_meta(self, operation: dict) -> None:
        """Buffer a redo record naming this object (no-op without a WAL)."""
        if self.database.wal is not None:
            operation.setdefault("coll", self.collection)
            operation.setdefault("obj", self.name)
            self.database.wal.log_meta(operation)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def current_domain(self) -> Optional[MInterval]:
        return self._current_domain

    @property
    def tile_count(self) -> int:
        return len(self._tiles)

    @property
    def dim(self) -> int:
        return self.mdd_type.dim

    def tile_entries(self) -> tuple[TileEntry, ...]:
        """Tile-table rows in insertion order."""
        return tuple(self._tiles.values())

    def stored_bytes(self) -> int:
        """Bytes on disk across all tiles (after compression)."""
        store = self.database.store
        return sum(store.record(t.blob_id).byte_size for t in self._tiles.values())

    def logical_bytes(self) -> int:
        """Uncompressed cell bytes across all tiles."""
        cell = self.mdd_type.cell_size
        return sum(t.domain.cell_count * cell for t in self._tiles.values())

    # ------------------------------------------------------------------
    # Loading (phase two of tiling)
    # ------------------------------------------------------------------

    def insert_tile(self, tile: Tile) -> int:
        """Store one tile (cells copied to a BLOB, domain indexed)."""
        with obs.span("tilestore.insert_tile", object=self.name):
            with self.database.transaction():
                return self._store_batch([tile])[0]

    def write_tiles(self, tiles: Sequence[Tile]) -> list[int]:
        """Bulk-insert many tiles as **one** transaction (group commit).

        Tiles are sorted by the database's clustering order, encoded
        through the parallel ingest pipeline, and committed with a single
        WAL write (one fsync in ``wal+fsync`` mode) and coalesced
        page-file flushes.  Stored bytes, blob ids, and page placements
        are byte-identical to calling :meth:`insert_tile` per tile in the
        same order; only the transaction boundaries differ.  Returns the
        new tile ids in storage order.
        """
        ordered = sorted(
            tiles, key=lambda t: self.database.tile_key(t.domain.lowest)
        )
        with obs.span(
            "tilestore.write_tiles", object=self.name, tiles=len(ordered)
        ):
            with self.database.transaction():
                return self._store_batch(ordered)

    def _store_batch(self, tiles: Sequence[Tile]) -> list[int]:
        """Coordinator half of the ingest pipeline (inside a transaction).

        Order-sensitive work — page allocation, WAL records, tile
        registration — happens here, tile by tile in the given order, so
        the on-disk outcome never depends on worker scheduling.  Decoded
        write-through admissions are deferred to the end of the batch,
        in page order, mirroring the read pipeline's deferred
        admissions.
        """
        self._touch()
        encoded = encode_tiles(self.database, tiles)
        tile_ids: list[int] = []
        admissions: list[tuple[int, bytes, tuple[int, ...]]] = []
        for item in encoded:
            self._admit_domain(item.tile.domain)
            blob_id = self.database.store.put(
                item.payload, codec=item.codec, page_crcs=item.page_crcs
            )
            self.database._note_created_blob(blob_id)
            self.database._log_blob_put(
                blob_id, item.payload, page_crcs=item.page_crcs
            )
            _TILES_STORED.inc()
            tile_ids.append(
                self._register(
                    item.tile.domain,
                    blob_id,
                    item.codec,
                    virtual=False,
                    synopsis=item.synopsis,
                )
            )
            admissions.append((blob_id, item.raw, item.tile.domain.shape))
        if self.database.decoded_cache is not None:
            for blob_id, raw, shape in admissions:
                self._admit_write_through(blob_id, raw, shape)
        ring = self.database.access_ring
        if tiles and ring.capacity and obs.registry.enabled:
            ring.record(
                "write",
                self.collection,
                self.name,
                str(MInterval.hull_of(t.domain for t in tiles)),
                self.database.epoch._current,
                cells=sum(t.domain.cell_count for t in tiles),
            )
        return tile_ids

    def _admit_write_through(
        self, blob_id: int, raw: bytes, shape: tuple[int, ...]
    ) -> None:
        """Admit a just-written tile's decoded cells into the cache.

        Read-after-write then scores a ``decoded_hit`` instead of a
        fetch+decode miss.  The admitted array is built from the
        serialised bytes — never a view of the caller's array — and the
        cache enforces its own byte budget (an oversized tile is simply
        not admitted).
        """
        cache = self.database.decoded_cache
        if cache is None:
            return
        array = np.frombuffer(raw, dtype=self.mdd_type.base.dtype).reshape(shape)
        cache.put(blob_id, array)
        _WRITE_THROUGH.inc()

    def attach_tile(
        self,
        domain: MInterval,
        blob_id: int,
        codec: str = "none",
        tile_id: Optional[int] = None,
        synopsis: Optional[TileSynopsis] = None,
    ) -> int:
        """Re-register an existing BLOB as a tile (catalog reload path).

        Used when reopening a file-backed database: the BLOB already holds
        the tile's cells, so no data is copied — only the tile table and
        the index are rebuilt.  ``tile_id`` pins the row id so that WAL
        records written against the live database keep resolving after a
        checkpoint reload.
        """
        record = self.database.store.record(blob_id)  # raises when missing
        self._touch()
        self._admit_domain(domain)
        expected = domain.cell_count * self.mdd_type.cell_size
        if codec == "none" and record.byte_size != expected:
            raise StorageError(
                f"blob {blob_id} holds {record.byte_size} bytes, tile "
                f"{domain} needs {expected}"
            )
        registered = self._register(
            domain,
            blob_id,
            codec,
            virtual=record.virtual,
            tile_id=tile_id,
            synopsis=synopsis,
        )
        if self.database._current_txn() is None:
            # Reload path runs outside any transaction: make the attached
            # tile (and the grown domain) visible to readers right away.
            epoch_mgr = self.database.epoch
            with epoch_mgr.latch:
                self._publish(epoch_mgr._current)
        return registered

    def insert_virtual_tile(self, domain: MInterval) -> int:
        """Register a tile with synthesized content (benchmark-scale data).

        The BLOB has the right size and page placement but no real bytes;
        reads return default-valued cells.
        """
        with self.database.transaction():
            self._touch()
            self._admit_domain(domain)
            blob_id = self.database.store.put_virtual(
                domain.cell_count * self.mdd_type.cell_size
            )
            self.database._note_created_blob(blob_id)
            self.database._log_blob_put(blob_id, b"")
            synopsis = (
                constant_synopsis(
                    domain.cell_count, self.mdd_type.base.default
                )
                if self.database.zone_maps
                and self.mdd_type.base.dtype.fields is None
                else None
            )
            return self._register(
                domain, blob_id, "none", virtual=True, synopsis=synopsis
            )

    def _admit_domain(self, domain: MInterval) -> None:
        self.mdd_type.validate_domain(domain, what="tile domain")
        hits = self.index.search(domain)
        if hits.entries:
            raise DomainError(
                f"tile {domain} overlaps stored tile "
                f"{hits.entries[0].domain} of {self.name!r}"
            )

    def _register(
        self,
        domain: MInterval,
        blob_id: int,
        codec: str,
        virtual: bool,
        tile_id: Optional[int] = None,
        synopsis: Optional[TileSynopsis] = None,
    ) -> int:
        if tile_id is None:
            tile_id = self._next_tile_id
        elif tile_id in self._tiles:
            raise StorageError(
                f"tile id {tile_id} already registered in {self.name!r}"
            )
        self._next_tile_id = max(self._next_tile_id, tile_id + 1)
        self._tiles[tile_id] = TileEntry(tile_id, domain, blob_id, codec, virtual)
        if synopsis is not None:
            self._zones[tile_id] = synopsis
        self.index.insert(IndexEntry(domain, tile_id))
        if self._current_domain is None:
            self._current_domain = domain
        else:
            self._current_domain = self._current_domain.hull(domain)
        record = {
            "op": "tile_register",
            "tile_id": tile_id,
            "domain": str(domain),
            "blob": blob_id,
            "codec": codec,
            "virtual": virtual,
        }
        if synopsis is not None:
            # The synopsis rides in the same redo record as the tile it
            # describes, so replay can never resurrect one without the
            # other (crash-safe sidecar, WAL-logged).
            record["zone"] = synopsis.to_dict()
        self._log_meta(record)
        return tile_id

    def load_array(
        self,
        array: np.ndarray,
        strategy,
        origin: Optional[Sequence[int]] = None,
        skip_default_tiles: bool = False,
    ) -> LoadStats:
        """Tile and store a dense array (the typical object load path).

        Runs the strategy's phase one, then stores tiles ordered by the
        database's tile clustering order so neighbouring tiles land on
        neighbouring pages.  Returns a :class:`LoadStats` splitting tiling
        time from data-insertion time (the paper notes tiling cost is
        negligible against insert cost).

        With ``skip_default_tiles`` the object only partially covers its
        domain: tiles consisting entirely of the base type's default
        value are not materialised (the paper's "partial cover of data
        cubes", important for sparse OLAP data).  Reads synthesise the
        default for the uncovered areas.
        """
        if array.dtype != self.mdd_type.base.dtype:
            array = array.astype(self.mdd_type.base.dtype)
        if origin is None:
            dd = self.mdd_type.definition_domain
            origin = tuple(0 if l is None else l for l in dd.lower)
        region = MInterval.from_shape(array.shape, origin)

        stats = LoadStats()
        with obs.span(
            "tilestore.load_array",
            object=self.name,
            strategy=type(strategy).__name__,
        ):
            started = time.perf_counter()
            spec = strategy.tile(region, self.mdd_type.cell_size)
            stats.tiling_ms = (time.perf_counter() - started) * 1000.0

            default_cell = self.mdd_type.base.default_cell()
            ordered = sorted(
                spec.tiles, key=lambda t: self.database.tile_key(t.lowest)
            )
            started = time.perf_counter()
            tiles = []
            for tile_domain in ordered:
                data = array[tile_domain.to_slices(origin)]
                if skip_default_tiles and (data == default_cell).all():
                    continue
                tiles.append(Tile(tile_domain, data))
            with self.database.transaction():
                if not tiles:
                    raise StorageError(
                        f"array for {self.name!r} holds only default values; "
                        f"nothing to store with skip_default_tiles"
                    )
                # One batch, one commit: the whole load is a single WAL
                # transaction (group commit) encoded through the ingest
                # pipeline.
                self._store_batch(tiles)
                # Partial coverage must not shrink the current domain below
                # the loaded region (the closure is over what the user
                # loaded).
                if self._current_domain is not None:
                    self._current_domain = self._current_domain.hull(region)
                self._log_meta(
                    {"op": "object_domain", "domain": str(self._current_domain)}
                )
            stats.store_ms = (time.perf_counter() - started) * 1000.0
            stats.tile_count = len(tiles)
            stats.bytes_stored = self.stored_bytes()
        return stats

    def load_virtual(self, domain: MInterval, strategy) -> LoadStats:
        """Like :meth:`load_array` but with synthesized tile contents."""
        stats = LoadStats()
        started = time.perf_counter()
        spec = strategy.tile(domain, self.mdd_type.cell_size)
        stats.tiling_ms = (time.perf_counter() - started) * 1000.0
        ordered = sorted(
            spec.tiles, key=lambda t: self.database.tile_key(t.lowest)
        )
        started = time.perf_counter()
        with self.database.transaction():
            for tile_domain in ordered:
                self.insert_virtual_tile(tile_domain)
        stats.store_ms = (time.perf_counter() - started) * 1000.0
        stats.tile_count = len(ordered)
        stats.bytes_stored = self.stored_bytes()
        return stats

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def resolve_region(self, region: MInterval) -> MInterval:
        """Resolve open bounds against the current domain and clip."""
        return self._resolve_in(region, self._current_domain)

    def _resolve_in(
        self, region: MInterval, domain: Optional[MInterval]
    ) -> MInterval:
        if domain is None:
            raise QueryError(f"object {self.name!r} holds no tiles yet")
        if region.dim != self.dim:
            raise QueryError(
                f"query dim {region.dim} does not match object dim {self.dim}"
            )
        resolved = region.resolve(domain)
        clipped = resolved.intersection(domain)
        if clipped is None:
            raise QueryError(
                f"region {region} outside current domain {domain}"
            )
        return clipped

    def read(
        self,
        region: MInterval,
        version: Optional[ObjectVersion] = None,
        *,
        predicate: Optional[CellPredicate] = None,
        prune: bool = True,
    ) -> tuple[np.ndarray, QueryTiming]:
        """Range query: dense result array plus timing breakdown.

        The paper's pipeline: (1) index lookup charging ``t_ix``;
        (2) BLOB retrieval of every intersected tile, sorted by page
        position, charging ``t_o`` — fetch and decode run through
        :func:`~repro.storage.pipeline.fetch_tiles`, which consults the
        decoded-tile cache and may overlap decoding on workers while the
        modelled disk charges stay strictly page-ordered; (3) composition
        of tile fragments into the result array, measured as ``t_cpu``.

        When a single stored tile fully covers the region, composition is
        skipped entirely and a zero-copy **read-only** view of the decoded
        tile is returned.

        ``version`` reads an explicitly captured
        :class:`~repro.storage.mvcc.ObjectVersion` (snapshot reads);
        without one, a thread inside its own transaction sees its working
        state and every other thread reads the published version under an
        epoch pin — a concurrently committing writer can never make this
        read observe half a transaction.

        With a ``predicate``, the result is the masked read
        ``np.where(predicate.mask(full), full, default)`` — cells failing
        the predicate (and uncovered space) carry the default value.  A
        :class:`~repro.index.zonemap.TilePruner` then drops intersected
        tiles whose synopsis proves no cell can match *before* they are
        fetched (``prune=False`` disables pruning for byte-identity
        verification); the result is byte-identical either way.
        """
        tiles_map, index, view_domain, zones, pin = self._reader_view(version)
        try:
            out, timing = self._read_view(
                region,
                tiles_map,
                index,
                view_domain,
                predicate=predicate,
                prune=prune,
                zones=zones,
            )
        finally:
            if pin is not None:
                self.database.epoch.unpin(pin)
        ring = self.database.access_ring
        if ring.capacity and obs.registry.enabled:
            if version is not None:
                epoch = version.epoch
            elif pin is not None:
                epoch = pin
            else:  # read-your-own-writes inside a transaction
                epoch = self.database.epoch._current
            ring.record(
                "read",
                self.collection,
                self.name,
                str(self._resolve_in(region, view_domain)),
                epoch,
                cost_ms=timing.t_totalcpu,
                cells=timing.cells_result,
            )
        return out, timing

    def _read_view(
        self,
        region: MInterval,
        tiles_map,
        index: SpatialIndex,
        view_domain: Optional[MInterval],
        predicate: Optional[CellPredicate] = None,
        prune: bool = True,
        zones=None,
    ) -> tuple[np.ndarray, QueryTiming]:
        region = self._resolve_in(region, view_domain)
        timing = QueryTiming(cells_result=region.cell_count)
        disk = self.database.disk
        pool = self.database.pool
        decoded = self.database.decoded_cache
        dtype = self.mdd_type.base.dtype

        with obs.span(
            "tilestore.read", object=self.name, region=str(region)
        ) as read_span:
            # (1) index lookup
            with obs.span(
                "index.search", index=type(index).__name__
            ) as ix_span:
                started = time.perf_counter()
                result = index.search(region)
                cpu_ix = (time.perf_counter() - started) * 1000.0
                page_ix = sum(
                    disk.charge_index_node()
                    for _ in range(result.nodes_visited)
                )
                ix_span.set_attr("nodes_visited", result.nodes_visited)
                ix_span.set_attr("entries", len(result.entries))
            timing.t_ix = cpu_ix + page_ix
            timing.t_ix_pages = page_ix
            timing.index_nodes = result.nodes_visited

            # (1b) value pruning: between the index lookup and the fetch,
            # drop intersected tiles whose synopsis proves no cell can
            # satisfy the predicate — they pay neither disk nor decode.
            entries = [tiles_map[e.tile_id] for e in result.entries]
            if predicate is not None and prune and zones:
                pruner = TilePruner(predicate, zones, dtype)
                entries = [
                    entry for entry in entries if pruner.can_match(entry.tile_id)
                ]
                timing.tiles_pruned = pruner.pruned
                note_tiles_pruned(pruner.pruned)
                read_span.set_attr("tiles_pruned", pruner.pruned)

            # (2) tile retrieval, in page order for sequential runs
            entries.sort(key=lambda t: disk.blob_pages(t.blob_id).start)
            pool_before = (
                (pool.hits, pool.misses, pool.evictions) if pool else None
            )
            decoded_before = (
                (decoded.hits, decoded.misses) if decoded is not None else None
            )
            with obs.span("tilestore.fetch", tiles=len(entries)):
                fetched = fetch_tiles(self.database, entries, dtype)
                for tile in fetched:
                    timing.t_o += tile.cost
                    timing.tiles_read += 1
                    timing.bytes_read += tile.payload_bytes
                    timing.pages_read += disk.blob_pages(
                        tile.entry.blob_id
                    ).count
                    timing.cells_fetched += tile.entry.domain.cell_count
            if pool_before is not None:
                timing.pool_hits = pool.hits - pool_before[0]
                timing.pool_misses = pool.misses - pool_before[1]
                timing.pool_evictions = pool.evictions - pool_before[2]
            if decoded_before is not None:
                timing.decoded_hits = decoded.hits - decoded_before[0]
                timing.decoded_misses = decoded.misses - decoded_before[1]

            # (3) composition: modelled copy cost (era-calibrated) plus the
            # real numpy time; border tiles pay the strided rate.
            with obs.span("tilestore.compose"):
                started = time.perf_counter()
                cell_size = self.mdd_type.cell_size
                aligned_bytes = 0
                border_bytes = 0
                single = fetched[0] if len(fetched) == 1 else None
                if (
                    predicate is None
                    and single is not None
                    and single.array is not None
                    and single.entry.domain.contains(region)
                ):
                    # Fast path: one real tile covers the whole region —
                    # no zeroed buffer, no copy, just a (read-only) view.
                    if region == single.entry.domain:
                        aligned_bytes = region.cell_count * cell_size
                        out = single.array
                    else:
                        border_bytes = (
                            single.entry.domain.cell_count * cell_size
                        )
                        out = single.array[
                            region.to_slices(single.entry.domain.lowest)
                        ]
                else:
                    out = np.zeros(region.shape, dtype=dtype)
                    default = self.mdd_type.base.default
                    if default != 0:
                        out[...] = default
                    default_cell = np.asarray(default, dtype=dtype)
                    for tile in fetched:
                        entry = tile.entry
                        part = entry.domain.intersection(region)
                        assert part is not None
                        if part == entry.domain:
                            aligned_bytes += entry.domain.cell_count * cell_size
                        else:
                            border_bytes += entry.domain.cell_count * cell_size
                        if tile.array is None:
                            # Synthesized tiles carry default cells; under
                            # a predicate the masked value of a default
                            # cell is the default either way.
                            continue
                        part_vals = tile.array[
                            part.to_slices(entry.domain.lowest)
                        ]
                        if predicate is not None:
                            part_vals = np.where(
                                predicate.mask(part_vals),
                                part_vals,
                                default_cell,
                            )
                        out[part.to_slices(region.lowest)] = part_vals
                measured_ms = (time.perf_counter() - started) * 1000.0
            timing.t_cpu = measured_ms + self.database.cpu_parameters.compose_ms(
                aligned_bytes, border_bytes
            )
            read_span.set_attr("tiles_read", timing.tiles_read)
            read_span.set_attr("bytes_read", timing.bytes_read)
        _READS.inc()
        _TILES_LOADED.inc(timing.tiles_read)
        _CELLS_FETCHED.inc(timing.cells_fetched)
        _CELLS_RETURNED.inc(timing.cells_result)
        _READ_MS.observe(timing.t_totalcpu)
        return out, timing

    def read_blocks(
        self,
        region: MInterval,
        version: Optional[ObjectVersion] = None,
    ) -> "Iterator[tuple[MInterval, np.ndarray, QueryTiming]]":
        """Stream a range query tile by tile (memory-bounded scans).

        Yields ``(part, data, timing)`` triples: ``part`` is the clipped
        region the fragment covers, ``data`` its dense cells, ``timing``
        the cost charged for that tile (the index lookup is charged to
        the first fragment).  Fragments of uncovered areas are not
        yielded — callers wanting defaults should track coverage or use
        :meth:`read`.  The union of parts plus uncovered space equals the
        resolved region; fragments arrive in page order.

        The epoch pin (taken when the generator starts, for readers
        outside a transaction) is held until the generator is exhausted
        or closed, so the streamed version stays fetchable throughout.
        """
        tiles_map, index, view_domain, _zones, pin = self._reader_view(version)
        try:
            yield from self._read_blocks_view(
                region, tiles_map, index, view_domain
            )
        finally:
            if pin is not None:
                self.database.epoch.unpin(pin)

    def _read_blocks_view(
        self,
        region: MInterval,
        tiles_map,
        index: SpatialIndex,
        view_domain: Optional[MInterval],
    ) -> "Iterator[tuple[MInterval, np.ndarray, QueryTiming]]":
        region = self._resolve_in(region, view_domain)
        disk = self.database.disk

        started = time.perf_counter()
        result = index.search(region)
        cpu_ix = (time.perf_counter() - started) * 1000.0
        page_ix = sum(
            disk.charge_index_node() for _ in range(result.nodes_visited)
        )
        pending_ix = cpu_ix + page_ix
        pending_nodes = result.nodes_visited

        entries = sorted(
            (tiles_map[e.tile_id] for e in result.entries),
            key=lambda t: disk.blob_pages(t.blob_id).start,
        )
        dtype = self.mdd_type.base.dtype
        pool = self.database.pool
        decoded = self.database.decoded_cache
        for entry in entries:
            timing = QueryTiming()
            timing.t_ix = pending_ix
            timing.t_ix_pages = page_ix
            timing.index_nodes = pending_nodes
            pending_ix = 0.0
            page_ix = 0.0
            pending_nodes = 0
            pool_before = (
                (pool.hits, pool.misses, pool.evictions) if pool else None
            )
            decoded_before = (
                (decoded.hits, decoded.misses) if decoded is not None else None
            )
            fetched = fetch_tile(self.database, entry, dtype)
            if pool_before is not None:
                timing.pool_hits = pool.hits - pool_before[0]
                timing.pool_misses = pool.misses - pool_before[1]
                timing.pool_evictions = pool.evictions - pool_before[2]
            if decoded_before is not None:
                timing.decoded_hits = decoded.hits - decoded_before[0]
                timing.decoded_misses = decoded.misses - decoded_before[1]
            timing.t_o = fetched.cost
            timing.tiles_read = 1
            timing.bytes_read = fetched.payload_bytes
            timing.pages_read = disk.blob_pages(entry.blob_id).count
            timing.cells_fetched = entry.domain.cell_count
            part = entry.domain.intersection(region)
            assert part is not None
            timing.cells_result = part.cell_count
            started = time.perf_counter()
            if fetched.array is None:
                data = np.zeros(part.shape, dtype=dtype)
                default = self.mdd_type.base.default
                if default != 0:
                    data[...] = default
            else:
                data = fetched.array[
                    part.to_slices(entry.domain.lowest)
                ].copy()
            timing.t_cpu = (
                (time.perf_counter() - started) * 1000.0
                + self.database.cpu_parameters.compose_ms(
                    *(
                        (entry.domain.cell_count * self.mdd_type.cell_size, 0)
                        if part == entry.domain
                        else (0, entry.domain.cell_count * self.mdd_type.cell_size)
                    )
                )
            )
            yield part, data, timing

    def read_section(
        self, axis: int, coordinate: int
    ) -> tuple[np.ndarray, QueryTiming]:
        """Access type (d): fix a coordinate, drop that axis."""
        if self._current_domain is None:
            raise QueryError(f"object {self.name!r} holds no tiles yet")
        slab = self._current_domain.section(axis, coordinate)
        data, timing = self.read(slab)
        return data.squeeze(axis=axis), timing

    def aggregate(
        self,
        region: MInterval,
        op: str,
        version: Optional[ObjectVersion] = None,
        prune: bool = True,
    ) -> tuple[Union[int, float, bool], QueryTiming]:
        """Condense ``op`` over ``region``, short-circuiting from synopses.

        Fully-covered tiles whose synopsis is present are answered with
        **zero decode** — no fetch, no disk charge — and counted in
        ``timing.tiles_synopsis_answered``; partially-covered (or
        synopsis-less) tiles are decoded and clipped.  The combination
        is only taken when :func:`~repro.index.zonemap.aggregate_eligible`
        proves it bitwise-equal to decoding the whole region and applying
        the condenser (integer sums under overflow guards, min/max/count
        with NaN bookkeeping); otherwise — float sums, oversized integer
        ranges, ``prune=False`` — the region is decoded and reduced
        conventionally.  Results are identical either way.
        """
        if op not in AGG_FUNCS:
            raise QueryError(f"unknown aggregate {op!r}")
        if self.mdd_type.base.dtype.fields is not None:
            raise QueryError(
                f"aggregate {op!r} needs a numeric base type, object "
                f"{self.name!r} has {self.mdd_type.base.name!r}"
            )
        tiles_map, index, view_domain, zones, pin = self._reader_view(version)
        try:
            value, timing = self._aggregate_view(
                region, tiles_map, index, view_domain, zones, op, prune
            )
        finally:
            if pin is not None:
                self.database.epoch.unpin(pin)
        ring = self.database.access_ring
        if ring.capacity and obs.registry.enabled:
            if version is not None:
                epoch = version.epoch
            elif pin is not None:
                epoch = pin
            else:
                epoch = self.database.epoch._current
            ring.record(
                "read",
                self.collection,
                self.name,
                str(self._resolve_in(region, view_domain)),
                epoch,
                cost_ms=timing.t_totalcpu,
                cells=timing.cells_result,
            )
        return value, timing

    def _aggregate_view(
        self,
        region: MInterval,
        tiles_map,
        index: SpatialIndex,
        view_domain: Optional[MInterval],
        zones,
        op: str,
        prune: bool,
    ) -> tuple[Union[int, float, bool], QueryTiming]:
        region = self._resolve_in(region, view_domain)
        timing = QueryTiming(cells_result=region.cell_count)
        disk = self.database.disk
        pool = self.database.pool
        decoded = self.database.decoded_cache
        dtype = self.mdd_type.base.dtype
        default = self.mdd_type.base.default
        zones = zones or {}

        with obs.span(
            "tilestore.aggregate", object=self.name, region=str(region), op=op
        ) as agg_span:
            # (1) index lookup — charged exactly like a range read
            with obs.span(
                "index.search", index=type(index).__name__
            ) as ix_span:
                started = time.perf_counter()
                result = index.search(region)
                cpu_ix = (time.perf_counter() - started) * 1000.0
                page_ix = sum(
                    disk.charge_index_node()
                    for _ in range(result.nodes_visited)
                )
                ix_span.set_attr("nodes_visited", result.nodes_visited)
                ix_span.set_attr("entries", len(result.entries))
            timing.t_ix = cpu_ix + page_ix
            timing.t_ix_pages = page_ix
            timing.index_nodes = result.nodes_visited

            # (1b) partition: fully-covered tiles with a synopsis can be
            # answered without decode; everything else must be fetched.
            entries = [tiles_map[e.tile_id] for e in result.entries]
            full: list[TileEntry] = []
            partial: list[TileEntry] = []
            syn_parts: list[TileSynopsis] = []
            all_syns: list[Optional[TileSynopsis]] = []
            covered = 0
            for entry in entries:
                part = entry.domain.intersection(region)
                assert part is not None
                covered += part.cell_count
                syn = zones.get(entry.tile_id)
                all_syns.append(syn)
                if syn is not None and region.contains(entry.domain):
                    full.append(entry)
                    syn_parts.append(syn)
                else:
                    partial.append(entry)
            uncovered = region.cell_count - covered
            eligible = prune and aggregate_eligible(
                op, dtype, all_syns, uncovered, default, region.cell_count
            )
            fetch_list = partial if eligible else entries

            # (2) tile retrieval of whatever could not be short-circuited
            fetch_list = sorted(
                fetch_list, key=lambda t: disk.blob_pages(t.blob_id).start
            )
            pool_before = (
                (pool.hits, pool.misses, pool.evictions) if pool else None
            )
            decoded_before = (
                (decoded.hits, decoded.misses) if decoded is not None else None
            )
            with obs.span("tilestore.fetch", tiles=len(fetch_list)):
                fetched = fetch_tiles(self.database, fetch_list, dtype)
                for tile in fetched:
                    timing.t_o += tile.cost
                    timing.tiles_read += 1
                    timing.bytes_read += tile.payload_bytes
                    timing.pages_read += disk.blob_pages(
                        tile.entry.blob_id
                    ).count
                    timing.cells_fetched += tile.entry.domain.cell_count
            if pool_before is not None:
                timing.pool_hits = pool.hits - pool_before[0]
                timing.pool_misses = pool.misses - pool_before[1]
                timing.pool_evictions = pool.evictions - pool_before[2]
            if decoded_before is not None:
                timing.decoded_hits = decoded.hits - decoded_before[0]
                timing.decoded_misses = decoded.misses - decoded_before[1]

            # (3) reduction
            with obs.span("tilestore.compose"):
                started = time.perf_counter()
                cell_size = self.mdd_type.cell_size
                aligned_bytes = 0
                border_bytes = 0
                if eligible:
                    array_parts: list[np.ndarray] = []
                    default_cells = uncovered
                    for tile in fetched:
                        entry = tile.entry
                        part = entry.domain.intersection(region)
                        assert part is not None
                        if part == entry.domain:
                            aligned_bytes += entry.domain.cell_count * cell_size
                        else:
                            border_bytes += entry.domain.cell_count * cell_size
                        if tile.array is None:
                            default_cells += part.cell_count
                            continue
                        array_parts.append(
                            tile.array[part.to_slices(entry.domain.lowest)]
                        )
                    value = combine_aggregate(
                        op,
                        dtype,
                        syn_parts,
                        array_parts,
                        default_cells,
                        default,
                        region.cell_count,
                    )
                    timing.tiles_synopsis_answered = len(full)
                    note_synopsis_answered(len(full))
                else:
                    out = np.zeros(region.shape, dtype=dtype)
                    if default != 0:
                        out[...] = default
                    for tile in fetched:
                        entry = tile.entry
                        part = entry.domain.intersection(region)
                        assert part is not None
                        if part == entry.domain:
                            aligned_bytes += entry.domain.cell_count * cell_size
                        else:
                            border_bytes += entry.domain.cell_count * cell_size
                        if tile.array is None:
                            continue
                        out[part.to_slices(region.lowest)] = tile.array[
                            part.to_slices(entry.domain.lowest)
                        ]
                    value = AGG_FUNCS[op](out)
                measured_ms = (time.perf_counter() - started) * 1000.0
            timing.t_cpu = measured_ms + self.database.cpu_parameters.compose_ms(
                aligned_bytes, border_bytes
            )
            agg_span.set_attr("tiles_read", timing.tiles_read)
            agg_span.set_attr(
                "tiles_synopsis_answered", timing.tiles_synopsis_answered
            )
        _READS.inc()
        _TILES_LOADED.inc(timing.tiles_read)
        _CELLS_FETCHED.inc(timing.cells_fetched)
        _READ_MS.observe(timing.t_totalcpu)
        return value, timing

    def aggregate_push(
        self,
        region: MInterval,
        op: str,
        version: Optional[ObjectVersion] = None,
        *,
        predicate: Optional[CellPredicate] = None,
        prune: bool = True,
    ) -> tuple[Union[int, float, bool], QueryTiming, bool]:
        """Condense ``op`` over ``region`` as combined per-tile partials.

        The planned engine's aggregation pushdown: intersected tiles are
        (1) pruned by zone map when a ``predicate`` proves no cell can
        match (the pruned part contributes default cells, exactly as the
        masked materialized box would), (2) answered straight from the
        stored synopsis with zero decode when fully covered and
        unpredicated, or (3) decoded on the pipeline workers, clipped,
        masked, and reduced to a
        :func:`~repro.index.zonemap.partial_synopsis` **on the worker** —
        the decoded array is dropped immediately, so peak memory stays at
        one tile per worker (reported in ``timing.peak_partial_bytes``)
        and the query box is never materialized.  The coordinator then
        combines all partials in deterministic tile-id order.

        The combination is only taken when
        :func:`~repro.index.zonemap.partial_aggregate_eligible` proves it
        bitwise-equal to materialize-then-reduce; otherwise (float
        sums/averages, unbounded integer ranges) this method falls back
        to the materialized reduction *inline* — same charges as the v1
        path — so results are identical either way.  Returns
        ``(value, timing, pushed)`` with ``pushed`` telling which branch
        ran (the planner surfaces it in ``EXPLAIN``).
        """
        if op not in AGG_FUNCS:
            raise QueryError(f"unknown aggregate {op!r}")
        if self.mdd_type.base.dtype.fields is not None:
            raise QueryError(
                f"aggregate {op!r} needs a numeric base type, object "
                f"{self.name!r} has {self.mdd_type.base.name!r}"
            )
        tiles_map, index, view_domain, zones, pin = self._reader_view(version)
        try:
            value, timing, pushed = self._aggregate_push_view(
                region,
                tiles_map,
                index,
                view_domain,
                zones,
                op,
                predicate=predicate,
                prune=prune,
            )
        finally:
            if pin is not None:
                self.database.epoch.unpin(pin)
        ring = self.database.access_ring
        if ring.capacity and obs.registry.enabled:
            if version is not None:
                epoch = version.epoch
            elif pin is not None:
                epoch = pin
            else:
                epoch = self.database.epoch._current
            ring.record(
                "read",
                self.collection,
                self.name,
                str(self._resolve_in(region, view_domain)),
                epoch,
                cost_ms=timing.t_totalcpu,
                cells=timing.cells_result,
            )
        return value, timing, pushed

    def _aggregate_push_view(
        self,
        region: MInterval,
        tiles_map,
        index: SpatialIndex,
        view_domain: Optional[MInterval],
        zones,
        op: str,
        *,
        predicate: Optional[CellPredicate] = None,
        prune: bool = True,
    ) -> tuple[Union[int, float, bool], QueryTiming, bool]:
        region = self._resolve_in(region, view_domain)
        timing = QueryTiming(cells_result=region.cell_count)
        disk = self.database.disk
        pool = self.database.pool
        decoded = self.database.decoded_cache
        dtype = self.mdd_type.base.dtype
        default = self.mdd_type.base.default
        zones = zones or {}

        with obs.span(
            "tilestore.aggregate",
            object=self.name,
            region=str(region),
            op=op,
            mode="pushdown",
        ) as agg_span:
            # (1) index lookup — charged exactly like a range read
            with obs.span(
                "index.search", index=type(index).__name__
            ) as ix_span:
                started = time.perf_counter()
                result = index.search(region)
                cpu_ix = (time.perf_counter() - started) * 1000.0
                page_ix = sum(
                    disk.charge_index_node()
                    for _ in range(result.nodes_visited)
                )
                ix_span.set_attr("nodes_visited", result.nodes_visited)
                ix_span.set_attr("entries", len(result.entries))
            timing.t_ix = cpu_ix + page_ix
            timing.t_ix_pages = page_ix
            timing.index_nodes = result.nodes_visited

            # (1b) partition: pruned (contribute default fill), answered
            # from the stored synopsis (zero decode), or decoded to a
            # worker-side partial.  Pruned tiles mirror the masked box:
            # their clipped part provably holds only failing cells, which
            # the materialized path would overwrite with the default.
            entries = [tiles_map[e.tile_id] for e in result.entries]
            pruner = (
                TilePruner(predicate, zones, dtype)
                if predicate is not None and prune and zones
                else None
            )
            syn_answered: list[tuple[int, TileSynopsis]] = []
            non_pruned: list[tuple[TileEntry, MInterval]] = []
            decode_items: list[tuple[TileEntry, MInterval]] = []
            bound_syns: list[Optional[TileSynopsis]] = []
            covered = 0
            default_cells = 0
            for entry in entries:
                part = entry.domain.intersection(region)
                assert part is not None
                covered += part.cell_count
                if pruner is not None and not pruner.can_match(entry.tile_id):
                    default_cells += part.cell_count
                    continue
                non_pruned.append((entry, part))
                syn = zones.get(entry.tile_id)
                bound_syns.append(syn)
                if (
                    predicate is None
                    and prune
                    and syn is not None
                    and region.contains(entry.domain)
                ):
                    syn_answered.append((entry.tile_id, syn))
                    continue
                decode_items.append((entry, part))
            uncovered = region.cell_count - covered
            default_cells += uncovered
            if pruner is not None:
                timing.tiles_pruned = pruner.pruned
                note_tiles_pruned(pruner.pruned)
                agg_span.set_attr("tiles_pruned", pruner.pruned)
            pushed = partial_aggregate_eligible(
                op,
                dtype,
                bound_syns,
                uncovered,
                default,
                region.cell_count,
                masked=predicate is not None,
            )
            if not pushed:
                # Ineligible (float add/avg, unbounded integer range):
                # the synopsis shortcut is off the table too — every
                # non-pruned tile is fetched and the box materialized.
                decode_items = non_pruned
                syn_answered = []

            # (2) tile retrieval, in page order for sequential runs
            fetch_list = sorted(
                decode_items,
                key=lambda item: disk.blob_pages(item[0].blob_id).start,
            )
            pool_before = (
                (pool.hits, pool.misses, pool.evictions) if pool else None
            )
            decoded_before = (
                (decoded.hits, decoded.misses) if decoded is not None else None
            )
            cell_size = self.mdd_type.cell_size
            aligned_bytes = 0
            border_bytes = 0
            if pushed:
                with obs.span("tilestore.fetch", tiles=len(fetch_list)):
                    partials, peak = fetch_tile_partials(
                        self.database,
                        fetch_list,
                        dtype,
                        predicate=predicate,
                        default=default,
                    )
                    for item in partials:
                        timing.t_o += item.cost
                        timing.tiles_read += 1
                        timing.bytes_read += item.payload_bytes
                        timing.pages_read += disk.blob_pages(
                            item.entry.blob_id
                        ).count
                        timing.cells_fetched += item.entry.domain.cell_count
                timing.peak_partial_bytes = peak
                # (3) combination, in deterministic tile-id order: the
                # per-tile partials (worker-reduced and synopsis-answered
                # alike) are merged by the coordinator; virtual tiles'
                # parts carry only default cells.
                with obs.span("tilestore.combine", parts=len(partials)):
                    started = time.perf_counter()
                    contributions = list(syn_answered)
                    for item in partials:
                        entry = item.entry
                        if item.part == entry.domain:
                            aligned_bytes += entry.domain.cell_count * cell_size
                        else:
                            border_bytes += entry.domain.cell_count * cell_size
                        if item.partial is None:
                            default_cells += item.part.cell_count
                            continue
                        contributions.append((entry.tile_id, item.partial))
                        timing.tiles_partial_agg += 1
                    contributions.sort(key=lambda pair: pair[0])
                    value = combine_aggregate(
                        op,
                        dtype,
                        [syn for _, syn in contributions],
                        [],
                        default_cells,
                        default,
                        region.cell_count,
                    )
                    timing.tiles_synopsis_answered = len(syn_answered)
                    note_synopsis_answered(len(syn_answered))
                    measured_ms = (time.perf_counter() - started) * 1000.0
            else:
                with obs.span("tilestore.fetch", tiles=len(fetch_list)):
                    fetched = fetch_tiles(
                        self.database,
                        [entry for entry, _ in fetch_list],
                        dtype,
                    )
                    for tile in fetched:
                        timing.t_o += tile.cost
                        timing.tiles_read += 1
                        timing.bytes_read += tile.payload_bytes
                        timing.pages_read += disk.blob_pages(
                            tile.entry.blob_id
                        ).count
                        timing.cells_fetched += tile.entry.domain.cell_count
                # (3) materialized fallback: compose the (masked) box and
                # reduce it — bitwise the v1 path, charged identically.
                with obs.span("tilestore.compose"):
                    started = time.perf_counter()
                    out = np.zeros(region.shape, dtype=dtype)
                    if default != 0:
                        out[...] = default
                    default_cell = np.asarray(default, dtype=dtype)
                    for tile in fetched:
                        entry = tile.entry
                        part = entry.domain.intersection(region)
                        assert part is not None
                        if part == entry.domain:
                            aligned_bytes += entry.domain.cell_count * cell_size
                        else:
                            border_bytes += entry.domain.cell_count * cell_size
                        if tile.array is None:
                            continue
                        part_vals = tile.array[
                            part.to_slices(entry.domain.lowest)
                        ]
                        if predicate is not None:
                            part_vals = np.where(
                                predicate.mask(part_vals),
                                part_vals,
                                default_cell,
                            )
                        out[part.to_slices(region.lowest)] = part_vals
                    value = AGG_FUNCS[op](out)
                    measured_ms = (time.perf_counter() - started) * 1000.0
            if pool_before is not None:
                timing.pool_hits = pool.hits - pool_before[0]
                timing.pool_misses = pool.misses - pool_before[1]
                timing.pool_evictions = pool.evictions - pool_before[2]
            if decoded_before is not None:
                timing.decoded_hits = decoded.hits - decoded_before[0]
                timing.decoded_misses = decoded.misses - decoded_before[1]
            timing.t_cpu = measured_ms + self.database.cpu_parameters.compose_ms(
                aligned_bytes, border_bytes
            )
            agg_span.set_attr("tiles_read", timing.tiles_read)
            agg_span.set_attr("tiles_partial_agg", timing.tiles_partial_agg)
            agg_span.set_attr(
                "tiles_synopsis_answered", timing.tiles_synopsis_answered
            )
        _READS.inc()
        _TILES_LOADED.inc(timing.tiles_read)
        _CELLS_FETCHED.inc(timing.cells_fetched)
        _READ_MS.observe(timing.t_totalcpu)
        return value, timing, pushed

    # ------------------------------------------------------------------
    # Updates / deletion
    # ------------------------------------------------------------------

    def update(self, region: MInterval, values: np.ndarray) -> int:
        """Overwrite covered cells of ``region`` (read-modify-write tiles).

        Returns the number of cells the update covered.  A tile whose new
        payload is byte-identical to its stored payload is *not*
        rewritten — its BLOB, page placement, and cache entries all stay
        untouched (a no-op write must not evict hot cache state).
        """
        self.mdd_type.validate_domain(region, what="update region")
        if tuple(values.shape) != region.shape:
            raise DomainError(
                f"values shape {tuple(values.shape)} does not match {region}"
            )
        written = 0
        dtype = self.mdd_type.base.dtype
        with self.database.transaction():
            self._touch()
            for entry in self.index.search(region).entries:
                tile_entry = self._tiles[entry.tile_id]
                if tile_entry.virtual:
                    raise StorageError(
                        f"cannot update virtual tile {tile_entry.domain}"
                    )
                fetched = fetch_tile(self.database, tile_entry, dtype)
                assert fetched.array is not None
                data = fetched.array.copy()
                part = tile_entry.domain.intersection(region)
                assert part is not None
                data[part.to_slices(tile_entry.domain.lowest)] = values[
                    part.to_slices(region.lowest)
                ]
                written += part.cell_count
                payload = data.tobytes(order="C")
                if payload == fetched.array.tobytes(order="C"):
                    continue  # unchanged cells: keep BLOB and caches as-is
                self._replace_payload(tile_entry, payload)
        ring = self.database.access_ring
        if ring.capacity and obs.registry.enabled:
            ring.record(
                "write",
                self.collection,
                self.name,
                str(region),
                self.database.epoch._current,
                cells=written,
            )
        return written

    def _replace_payload(self, tile_entry: TileEntry, payload: bytes) -> None:
        # The superseded blob is retired, not deleted: a reader pinned on
        # an older version may still fetch it.  Epoch reclamation deletes
        # it once no pin can reach it (immediately when there are none).
        self.database.retire_blob(tile_entry.blob_id)
        self._log_meta({"op": "blob_delete", "blob": tile_entry.blob_id})
        raw = payload
        codec, payload, page_crcs = encode_payload(self.database, raw)
        tile_entry.blob_id = self.database.store.put(
            payload, codec=codec, page_crcs=page_crcs
        )
        tile_entry.codec = codec
        self.database._note_created_blob(tile_entry.blob_id)
        self.database._log_blob_put(
            tile_entry.blob_id, payload, page_crcs=page_crcs
        )
        record: dict = {
            "op": "tile_rebind",
            "tile_id": tile_entry.tile_id,
            "blob": tile_entry.blob_id,
            "codec": codec,
        }
        # Recompute the synopsis from the new cells in the same
        # transaction (and the same redo record) as the rebind — an
        # updated tile and a stale synopsis can never publish together.
        synopsis = (
            compute_synopsis(
                np.frombuffer(raw, dtype=self.mdd_type.base.dtype),
                self.database.zone_bins,
            )
            if self.database.zone_maps
            else None
        )
        if synopsis is not None:
            self._zones[tile_entry.tile_id] = synopsis
            record["zone"] = synopsis.to_dict()
        else:
            self._zones.pop(tile_entry.tile_id, None)
            record["zone"] = None
        self._log_meta(record)
        self._admit_write_through(
            tile_entry.blob_id, raw, tile_entry.domain.shape
        )

    def delete_region(self, region: MInterval) -> int:
        """Shrinkage (Section 2): drop every tile fully inside ``region``.

        Tiles that only partially overlap the region are kept whole —
        tiles are the unit of storage, so removal granularity is the
        tile (callers wanting finer removal can :meth:`update` cells to
        the default value instead).  The current domain shrinks to the
        hull of the remaining tiles.  Returns the number of tiles
        dropped.
        """
        self.mdd_type.validate_domain(region, what="delete region")
        with self.database.transaction():
            self._touch()
            victims = sorted(
                (
                    self._tiles[hit.tile_id]
                    for hit in self.index.search(region).entries
                    if region.contains(hit.domain)
                ),
                key=lambda entry: entry.tile_id,
            )
            for entry in victims:
                self.database.retire_blob(entry.blob_id)
                self.index.remove(entry.tile_id)
                del self._tiles[entry.tile_id]
                self._zones.pop(entry.tile_id, None)
                self._log_meta({"op": "blob_delete", "blob": entry.blob_id})
                self._log_meta(
                    {"op": "tile_remove", "tile_id": entry.tile_id}
                )
            if self._tiles:
                self._current_domain = MInterval.hull_of(
                    entry.domain for entry in self._tiles.values()
                )
            else:
                self._current_domain = None
            if victims:
                self._log_meta(
                    {
                        "op": "object_domain",
                        "domain": (
                            str(self._current_domain)
                            if self._current_domain is not None
                            else None
                        ),
                    }
                )
        ring = self.database.access_ring
        if victims and ring.capacity and obs.registry.enabled:
            ring.record(
                "delete",
                self.collection,
                self.name,
                str(region),
                self.database.epoch._current,
                cells=sum(entry.domain.cell_count for entry in victims),
            )
        return len(victims)

    def retile(self, strategy, skip_default_tiles: bool = False) -> LoadStats:
        """Reorganise the object's storage under a new tiling strategy.

        The closing step of the statistic-tiling loop: once the access
        log suggests a better layout, the object is read back tile by
        tile, re-partitioned, and rewritten — logically unchanged (same
        current domain, same cell values, partial coverage preserved as
        default values becoming materialised cells).

        Returns the :class:`LoadStats` of the reload.
        """
        if self._current_domain is None:
            raise QueryError(f"object {self.name!r} holds no tiles to retile")
        if any(entry.virtual for entry in self._tiles.values()):
            raise StorageError(
                f"object {self.name!r} has virtual tiles; retiling would "
                f"materialise synthesized data"
            )
        data, _timing = self.read(self._current_domain)
        origin = self._current_domain.lowest
        old_domain = self._current_domain
        with self.database.transaction():
            self.drop()
            stats = self.load_array(
                data, strategy, origin=origin,
                skip_default_tiles=skip_default_tiles,
            )
        assert self._current_domain == old_domain
        return stats

    def drop(self) -> None:
        """Delete all tiles and index entries of this object."""
        with self.database.transaction():
            self._touch()
            for tile_entry in self._tiles.values():
                self.database.retire_blob(tile_entry.blob_id)
                self._log_meta(
                    {"op": "blob_delete", "blob": tile_entry.blob_id}
                )
            self._tiles.clear()
            self._zones.clear()
            self.index = self.database.make_index(self.dim)
            self._current_domain = None
            self._log_meta({"op": "object_clear"})

    def __repr__(self) -> str:
        return (
            f"StoredMDD({self.name!r}, type={self.mdd_type.name}, "
            f"tiles={self.tile_count}, domain={self._current_domain})"
        )


@dataclass
class _TxnState:
    """Bookkeeping of one in-flight transaction (thread-local).

    ``dirtied`` maps each copy-on-write-cloned object to the
    ``(published version, next_tile_id)`` pair restored on abort;
    ``retired`` collects superseded blob ids handed to the epoch manager
    at commit; the ``created_*`` lists are what a rollback unwinds.
    """

    depth: int = 1
    dirtied: dict = field(default_factory=dict)
    retired: list = field(default_factory=list)
    created_blobs: list = field(default_factory=list)
    created_collections: list = field(default_factory=list)
    created_objects: list = field(default_factory=list)


class Database:
    """Shared storage context: BLOB store, disk model, pool, collections.

    The unit a RasQL session talks to.  Collections are named sets of
    stored MDD objects, mirroring the ODMG collections RasDaMan queries
    range over.

    Concurrency (DESIGN §11): writers serialize on a writer latch —
    one transaction at a time, owned by one thread.  Readers never take
    it: they pin the current epoch and read immutable published
    versions, so reads run in parallel with a committing writer and see
    either all of a transaction or none of it.
    """

    def __init__(
        self,
        store: Optional[BlobStore] = None,
        disk_parameters: Optional[DiskParameters] = None,
        cpu_parameters: Optional[CpuParameters] = None,
        buffer_bytes: int = 0,
        index_factory: IndexFactory = default_index_factory,
        tile_key=row_major_key,
        compression: bool = False,
        codecs: tuple[str, ...] = ("zlib",),
        decoded_cache_bytes: int = 0,
        io_workers: int = 1,
        durability: str = "none",
        wal_path: Optional[Union[str, Path]] = None,
        injector: Optional[FaultInjector] = None,
        access_log_capacity: int = 1024,
        zone_maps: bool = True,
        zone_bins: int = 8,
    ) -> None:
        self.store = store if store is not None else MemoryBlobStore()
        if disk_parameters is None:
            disk_parameters = DiskParameters(page_size=self.store.page_size)
        self.disk = SimulatedDisk(self.store, disk_parameters)
        self.cpu_parameters = (
            cpu_parameters if cpu_parameters is not None else CpuParameters()
        )
        self.pool = (
            BufferPool(self.disk, buffer_bytes) if buffer_bytes > 0 else None
        )
        self.decoded_cache = (
            DecodedTileCache(decoded_cache_bytes)
            if decoded_cache_bytes > 0
            else None
        )
        if io_workers < 1:
            raise StorageError(f"io_workers must be >= 1, got {io_workers}")
        self.io_workers = io_workers
        self._io_executor: Optional[ThreadPoolExecutor] = None
        self._index_factory = index_factory
        self.tile_key = tile_key
        self.compression = compression
        self.codecs = codecs
        # Zone maps: per-tile value synopses for predicate pruning and
        # aggregate short-circuiting (DESIGN §13).
        self.zone_maps = zone_maps
        self.zone_bins = zone_bins
        self.collections: dict[str, dict[str, StoredMDD]] = {}
        self.wal: Optional[WriteAheadLog] = None
        self.durability = "none"
        self.last_recovery = None
        self.epoch = EpochManager(self._reclaim_blob)
        # Live access log: every read/write region lands here (bounded,
        # obs-gated); capacity 0 disables recording entirely.
        self.access_ring = obs.AccessRing(access_log_capacity)
        # One writer transaction at a time; reentrant so nested
        # transaction() scopes on the owning thread are free.
        self._writer_latch = OrderedLatch("txn.writer", 10, reentrant=True)
        self._txn_local = threading.local()
        if durability != "none":
            self.arm_durability(durability, wal_path=wal_path, injector=injector)

    # -- plumbing shared by objects ---------------------------------------

    def make_index(self, dim: int) -> SpatialIndex:
        """New spatial index from the configured factory."""
        return self._index_factory(dim, self.store.page_size)

    def read_blob(self, blob_id: int) -> tuple[bytes, float]:
        """BLOB payload and charged milliseconds, via the pool if any."""
        if self.pool is not None:
            return self.pool.read_blob(blob_id)
        return self.disk.read_blob(blob_id)

    def pipeline_executor(self) -> Optional[ThreadPoolExecutor]:
        """Lazy decode worker pool; ``None`` in serial mode (default)."""
        if self.io_workers <= 1:
            return None
        if self._io_executor is None:
            self._io_executor = ThreadPoolExecutor(
                max_workers=self.io_workers, thread_name_prefix="repro-io"
            )
        return self._io_executor

    def close(self) -> None:
        """Shut down the decode worker pool and the WAL (idempotent)."""
        if self._io_executor is not None:
            self._io_executor.shutdown(wait=True)
            self._io_executor = None
        if self.wal is not None:
            self.wal.close()

    def invalidate_blob(self, blob_id: int) -> None:
        """Drop a BLOB from every cache layer (after update/delete)."""
        if self.pool is not None:
            self.pool.invalidate(blob_id)
        if self.decoded_cache is not None:
            self.decoded_cache.invalidate(blob_id)

    # -- durability ----------------------------------------------------------

    def arm_durability(
        self,
        durability: str,
        wal_path: Optional[Union[str, Path]] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        """Attach a write-ahead log and switch the store to deferred writes.

        From here on every mutation must run inside :meth:`transaction`:
        redo records buffer in the log, payloads pend in the store, and
        only a committed transaction flushes bytes to the backend — the
        WAL rule that makes recovery redo-only.  Called by
        :func:`~repro.storage.catalog.open_database` *after* recovery, so
        the log always starts from a clean checkpoint.
        """
        if durability not in DURABILITY_MODES:
            raise StorageError(
                f"unknown durability mode {durability!r}; "
                f"expected one of {DURABILITY_MODES}"
            )
        if durability == "none":
            return
        if self.wal is not None:
            raise StorageError("durability is already armed")
        if wal_path is None:
            base = getattr(self.store, "path", None)
            if base is None:
                raise StorageError(
                    "wal_path is required for stores without a backing file"
                )
            # Same convention as the catalog layer: the log lives next to
            # the page file as <directory>/wal.log.
            wal_path = Path(base).with_name("wal.log")
        self.wal = WriteAheadLog(
            wal_path,
            fsync=(durability == "wal+fsync"),
            page_size=self.store.page_size,
            injector=injector,
            disk=self.disk,
        )
        self.durability = durability
        self.store.set_deferred_writes(True)

    # -- transactions (single writer, snapshot-isolated readers) ---------

    def _current_txn(self) -> Optional[_TxnState]:
        """This thread's in-flight transaction, if any."""
        return getattr(self._txn_local, "txn", None)

    @property
    def _txn_depth(self) -> int:
        """Nesting depth of this thread's transaction (0 outside one)."""
        txn = self._current_txn()
        return txn.depth if txn is not None else 0

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Atomic mutation scope; nests (only the outermost commits).

        The outermost scope takes the writer latch, so transactions from
        different threads serialize.  On exit the commit publishes every
        dirtied object's new version atomically under the epoch latch —
        concurrent readers flip from the old consistent state to the new
        one in a single step.  With a WAL, the commit record hits the
        log *before* any pending payload reaches the page file (the WAL
        rule); the fsync and the page-file flush happen *after* the
        writer latch is released, so a queue of committers shares fsyncs
        through the group-commit door.

        An exception rolls the transaction back: dirtied objects revert
        to their published versions, created blobs/objects/collections
        are unwound, and buffered WAL records are dropped — the database
        stays live and exactly as before the transaction.
        """
        txn = self._current_txn()
        if txn is not None:
            txn.depth += 1
            try:
                yield
            finally:
                txn.depth -= 1
            return
        self._writer_latch.acquire()
        txn = self._txn_local.txn = _TxnState()
        sealed = None
        pending: Sequence[int] = ()
        try:
            try:
                yield
            except BaseException:
                self._rollback(txn)
                raise
            if self.wal is not None:
                # Log first: the frame is on the OS-buffered log before
                # any version becomes visible or any payload can land.
                sealed = self.wal.commit_frame()
            with self.epoch.latch:
                next_epoch = self.epoch._current + 1
                for obj in txn.dirtied:
                    obj._publish(next_epoch)
                self.epoch.retire_and_advance(txn.retired)
                self._note_live_versions()
                # Thread-local: lets the committing thread pair what it
                # wrote with the exact epoch readers will see it under
                # (the concurrency checker keys its history on this).
                self._txn_local.last_commit_epoch = next_epoch
            if self.wal is not None:
                pending = self.store.take_pending()
        finally:
            self._txn_local.txn = None
            self._writer_latch.release()
        if sealed is not None:
            # Durable (wal+fsync) outside the writer latch: concurrent
            # committers elect one fsync leader (group commit).
            self.wal.sync_to(sealed[1])
        if self.wal is not None:
            # Pending payloads reach the page file only now, after the
            # log is durable.  Each coalesced flush run is charged as one
            # positioned write on the modelled disk (write counters, not
            # t_o).  Readers keep hitting the pending buffer until the
            # backend write completes, so bytes are always available.
            for run in self.store.flush_ids(pending):
                self.disk.charge_data_write(run)

    def _rollback(self, txn: _TxnState) -> None:
        """Restore working state to the last published versions."""
        for obj, (saved, next_tile_id) in txn.dirtied.items():
            obj._restore_version(saved, next_tile_id)
        for blob_id in txn.created_blobs:
            self.invalidate_blob(blob_id)
            self.store.forget(blob_id)
        with self.epoch.latch:
            for coll_name, obj_name in txn.created_objects:
                coll = self.collections.get(coll_name)
                if coll is not None:
                    coll.pop(obj_name, None)
            for coll_name in txn.created_collections:
                self.collections.pop(coll_name, None)
        if self.wal is not None:
            self.wal.abort()

    def _note_created_blob(self, blob_id: int) -> None:
        """Track a blob created by the current transaction (for abort)."""
        txn = self._current_txn()
        if txn is not None:
            txn.created_blobs.append(blob_id)

    def retire_blob(self, blob_id: int) -> None:
        """Queue a superseded blob for epoch-based reclamation.

        Cache entries are dropped right away (the id will never be read
        through this database's working state again); the physical
        delete waits until commit publication, and then only until no
        epoch pin can still reach the old version (immediately, with no
        readers active).
        """
        self.invalidate_blob(blob_id)
        txn = self._current_txn()
        if txn is not None:
            txn.retired.append(blob_id)
        else:
            with self.epoch.latch:
                self.epoch.retire_and_advance([blob_id])

    def _reclaim_blob(self, blob_id: int) -> int:
        """Physically delete one retired blob; returns freed bytes.

        Runs under the epoch latch as the :class:`EpochManager`'s
        reclaimer (cache and store latches rank above it)."""
        self.invalidate_blob(blob_id)
        try:
            record = self.store.record(blob_id)
        except BlobNotFoundError:
            return 0
        freed = record.stored_size or 0
        self.store.delete(blob_id)
        return freed

    def republish(self) -> None:
        """Re-freeze every object's working state as its published version.

        For single-threaded maintenance paths that mutate working state
        outside a transaction (catalog reload, recovery replay); not for
        use while readers are active.
        """
        with self.epoch.latch:
            epoch = self.epoch._current
            for objects in self.collections.values():
                for obj in objects.values():
                    obj._publish(epoch)
            self._note_live_versions()

    def _note_live_versions(self) -> None:
        """Refresh the ``mvcc.live_versions`` gauge (one live published
        version per stored object); caller holds the epoch latch or is
        otherwise serialized against publication."""
        note_live_versions(
            sum(len(objects) for objects in self.collections.values())
        )

    def last_commit_epoch(self) -> Optional[int]:
        """Epoch published by this thread's most recent commit (or None).

        Thread-local by construction, so a writer can record "state X is
        what epoch E readers observe" without racing other committers.
        """
        return getattr(self._txn_local, "last_commit_epoch", None)

    def snapshot(self) -> Snapshot:
        """Open a pinned point-in-time view of every object.

        Reads through the snapshot are repeatable and mutually
        consistent across objects no matter how many transactions commit
        meanwhile; close it (or use ``with``) to release the pin so
        superseded blobs can be reclaimed.
        """
        return Snapshot(self)

    def _log_blob_put(
        self,
        blob_id: int,
        payload: bytes,
        page_crcs: Optional[list[int]] = None,
    ) -> None:
        """Buffer a payload redo record for a just-written BLOB.

        ``page_crcs`` forwards checksums the ingest pipeline already
        computed, so the WAL does not checksum the payload again.
        """
        if self.wal is not None:
            self.wal.log_blob_put(
                self.store.record(blob_id), payload, page_crcs=page_crcs
            )

    def _log_meta(self, operation: dict) -> None:
        """Buffer a database-level logical redo record."""
        if self.wal is not None:
            self.wal.log_meta(operation)

    # -- collection management ----------------------------------------------

    def create_collection(self, name: str) -> dict[str, StoredMDD]:
        """Create an empty named collection (errors when it exists)."""
        if name in self.collections:
            raise StorageError(f"collection {name!r} already exists")
        with self.transaction():
            # The epoch latch guards the collections dict only against
            # concurrent snapshot capture (dict iteration); object
            # existence itself is visible as soon as it is created —
            # DDL is immediate, data is snapshot-isolated (DESIGN §11).
            with self.epoch.latch:
                self.collections[name] = {}
            txn = self._current_txn()
            if txn is not None:
                txn.created_collections.append(name)
            self._log_meta({"op": "create_collection", "coll": name})
        return self.collections[name]

    def collection(self, name: str) -> dict[str, StoredMDD]:
        """Objects of a collection by name (errors when absent)."""
        try:
            return self.collections[name]
        except KeyError:
            raise StorageError(f"no collection {name!r}") from None

    def create_object(
        self, collection: str, mdd_type: MDDType, name: str
    ) -> StoredMDD:
        """Create an empty stored MDD inside a collection."""
        with self.epoch.latch:
            new_coll = collection not in self.collections
            coll = self.collections.setdefault(collection, {})
        if name in coll:
            raise StorageError(
                f"object {name!r} already exists in collection {collection!r}"
            )
        obj = StoredMDD(self, mdd_type, name, collection=collection)
        with self.transaction():
            txn = self._current_txn()
            if txn is not None:
                if new_coll:
                    txn.created_collections.append(collection)
                txn.created_objects.append((collection, name))
            with self.epoch.latch:
                coll[name] = obj
                self._note_live_versions()
            self._log_meta(
                {
                    "op": "create_object",
                    "coll": collection,
                    "obj": name,
                    # Full type, not just the name: replay must be able to
                    # reconstruct the object without a type registry.
                    "type": {
                        "name": mdd_type.name,
                        "base": mdd_type.base.name,
                        "dd": str(mdd_type.definition_domain),
                    },
                }
            )
        return obj

    def objects(self, collection: str) -> tuple[StoredMDD, ...]:
        """All stored MDD objects of a collection."""
        return tuple(self.collection(collection).values())

    def reset_clock(self) -> None:
        """Zero all measurement state (cold measurement boundary).

        Clears the caches *and* their hit/miss counters, the disk
        counters, and the WAL activity stats — a batch boundary must not
        leak per-query tallies (cache hit deltas, WAL append counts) into
        the next measurement.  Durable state (log file, pending writes)
        is untouched: resetting a clock must never lose data.
        """
        self.disk.reset()
        if self.pool is not None:
            self.pool.clear()
            self.pool.reset_stats()
        if self.decoded_cache is not None:
            self.decoded_cache.clear()
            self.decoded_cache.reset_stats()
        if self.wal is not None:
            self.wal.stats.reset()
        self.access_ring.clear()

    def profile(
        self,
        collection: str,
        name: str,
        region,
        predicate: Optional[CellPredicate] = None,
        op: Optional[str] = None,
        pushdown: bool = True,
    ) -> "QueryProfile":
        """Run one read with EXPLAIN ANALYZE-style per-stage accounting.

        Returns a :class:`repro.query.profile.QueryProfile` whose stages
        reconcile against the read's :class:`QueryTiming` (modelled time
        exactly, wall time within tolerance).  With a ``predicate`` the
        read is masked and zone-map pruned, and the profile gains a
        ``prune`` stage reporting ``tiles_pruned``.  With ``op`` (a
        condenser name) the query is a planned aggregate: the profile
        carries the annotated plan (scan → prune → partial-aggregate →
        combine → project) and its stages cover the pushdown path;
        ``pushdown=False`` profiles the v1 materialized reduction.
        """
        if op is not None:
            from repro.query.profile import profile_aggregate

            return profile_aggregate(
                self,
                collection,
                name,
                region,
                op,
                predicate=predicate,
                pushdown=pushdown,
            )
        from repro.query.profile import profile_read

        return profile_read(self, collection, name, region, predicate=predicate)
