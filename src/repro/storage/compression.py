"""Selective tile compression (paper Section 8 / RasDaMan feature).

The RasDaMan storage manager supports *selective compression of blocks* —
important for sparse data, where many tiles are mostly default values.
Three codecs are provided:

* ``none`` — identity;
* ``rle``  — byte-level run-length encoding, ideal for constant runs of
  default cells (the chunk-offset-style case of sparse OLAP tiles);
* ``zlib`` — DEFLATE via the standard library.

``select_codec`` implements the *selective* part: a tile is stored
compressed only when compression actually pays (saves at least one page
or a configurable ratio).
"""

from __future__ import annotations

import time
import zlib
from typing import Callable

import numpy as np

from repro import obs
from repro.core.errors import StorageError

Codec = tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]

_ENCODES = obs.counter("codec.encodes", "Payloads encoded (all codecs)")
_DECODES = obs.counter("codec.decodes", "Payloads decoded (all codecs)")
_ENCODE_BYTES_IN = obs.counter("codec.encode_bytes_in", "Raw bytes given to encoders")
_ENCODE_BYTES_OUT = obs.counter("codec.encode_bytes_out", "Encoded bytes produced")
_ENCODE_MS = obs.histogram("codec.encode_ms", "Wall milliseconds per encode")
_DECODE_MS = obs.histogram("codec.decode_ms", "Wall milliseconds per decode")


def _rle_encode_scalar(payload: bytes) -> bytes:
    """Reference byte-loop encoder (kept for equality tests)."""
    out = bytearray()
    n = len(payload)
    i = 0
    while i < n:
        value = payload[i]
        run = 1
        while i + run < n and run < 256 and payload[i + run] == value:
            run += 1
        out.append(run - 1)
        out.append(value)
        i += run
    return bytes(out)


def _rle_decode_scalar(payload: bytes) -> bytes:
    """Reference byte-loop decoder (kept for equality tests)."""
    if len(payload) % 2:
        raise StorageError("corrupt RLE payload (odd length)")
    out = bytearray()
    for i in range(0, len(payload), 2):
        out.extend(payload[i + 1 : i + 2] * (payload[i] + 1))
    return bytes(out)


def rle_encode(payload: bytes) -> bytes:
    """Byte run-length encoding: pairs ``(count - 1, value)``, runs <= 256.

    Vectorised: run boundaries come from one inequality over adjacent
    bytes, and runs longer than 256 split into ceil(len/256) chunks —
    all 255 except a final remainder — exactly as the byte-loop encoder
    emitted them, so the wire format is unchanged.
    """
    n = len(payload)
    if n == 0:
        return b""
    data = np.frombuffer(payload, dtype=np.uint8)
    boundaries = np.flatnonzero(data[1:] != data[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    run_lens = np.diff(np.concatenate((starts, [n])))
    full, remainder = np.divmod(run_lens, 256)
    chunks = full + (remainder > 0)
    total = int(chunks.sum())
    counts = np.full(total, 255, dtype=np.uint8)
    last_chunk = np.cumsum(chunks) - 1
    has_remainder = remainder > 0
    counts[last_chunk[has_remainder]] = (
        remainder[has_remainder] - 1
    ).astype(np.uint8)
    out = np.empty(total * 2, dtype=np.uint8)
    out[0::2] = counts
    out[1::2] = np.repeat(data[starts], chunks)
    return out.tobytes()


def rle_decode(payload: bytes) -> bytes:
    """Inverse of :func:`rle_encode` (vectorised ``np.repeat``)."""
    if len(payload) % 2:
        raise StorageError("corrupt RLE payload (odd length)")
    if not payload:
        return b""
    data = np.frombuffer(payload, dtype=np.uint8)
    counts = data[0::2].astype(np.intp) + 1
    return np.repeat(data[1::2], counts).tobytes()


#: DEFLATE effort for the ``zlib`` codec.  Level 2 is write-optimised:
#: on the benchmark cubes it compresses within ~2% of level 6's ratio at
#: roughly 5x the speed, and ingest is compression-bound long before the
#: modelled disk is.  Decoding accepts any level, so stored data is
#: unaffected by later retuning.
ZLIB_LEVEL = 2

_CODECS: dict[str, Codec] = {
    "none": (lambda b: b, lambda b: b),
    "rle": (rle_encode, rle_decode),
    "zlib": (
        lambda b: zlib.compress(b, level=ZLIB_LEVEL),
        zlib.decompress,
    ),
}


def known_codecs() -> tuple[str, ...]:
    """Names of the registered codecs."""
    return tuple(sorted(_CODECS))


def compress(payload: bytes, codec: str) -> bytes:
    """Encode ``payload`` with the named codec."""
    try:
        encode, _decode = _CODECS[codec]
    except KeyError:
        raise StorageError(f"unknown codec {codec!r}") from None
    if not obs.enabled():
        return encode(payload)
    started = time.perf_counter()
    encoded = encode(payload)
    _ENCODE_MS.observe((time.perf_counter() - started) * 1000.0)
    _ENCODES.inc()
    _ENCODE_BYTES_IN.inc(len(payload))
    _ENCODE_BYTES_OUT.inc(len(encoded))
    return encoded


def decompress(payload: bytes, codec: str) -> bytes:
    """Decode ``payload`` with the named codec."""
    try:
        _encode, decode = _CODECS[codec]
    except KeyError:
        raise StorageError(f"unknown codec {codec!r}") from None
    if not obs.enabled():
        return decode(payload)
    started = time.perf_counter()
    decoded = decode(payload)
    _DECODE_MS.observe((time.perf_counter() - started) * 1000.0)
    _DECODES.inc()
    return decoded


def select_codec(
    payload: bytes,
    candidates: tuple[str, ...] = ("zlib",),
    min_ratio: float = 0.9,
) -> tuple[str, bytes]:
    """Selective compression: best candidate, or ``none`` when nothing
    shrinks the payload below ``min_ratio`` of its raw size.

    Returns ``(codec_name, encoded_payload)``.
    """
    if not payload:
        return "none", payload
    best_name, best = "none", payload
    bound = int(len(payload) * min_ratio)
    for name in candidates:
        encoded = compress(payload, name)
        if len(encoded) <= bound and len(encoded) < len(best):
            best_name, best = name, encoded
    return best_name, best
