"""Deterministic disk timing model.

The paper measures ``t_o`` — the time to retrieve the intersected tiles
from disk — on a 1996 workstation disk through the O2 store.  That
hardware cannot be reproduced, and Python wall-clock I/O timing is too
noisy to be meaningful, so this module *models* the disk: every BLOB read
is charged

* a seek plus half a rotation when its first page does not follow the
  previously read page (random access), and
* a transfer cost per page read.

What the model preserves is exactly what the tiling strategies optimise:
the number of pages fetched and the random-vs-sequential access pattern.
Defaults approximate the paper's era: 8 ms seek, 7200 rpm, 5 MB/s
effective transfer through the object store, a 2 ms settle for short
forward skips, and a 1 ms per-BLOB dereference overhead on 8 KiB pages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import obs
from repro.core.errors import StorageError
from repro.storage.blob import BlobStore
from repro.storage.latch import OrderedLatch
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageRange, pages_needed

_BLOB_READS = obs.counter("disk.blob_reads", "BLOBs fetched from the simulated disk")
_PAGES_READ = obs.counter("disk.pages_read", "Pages charged on the simulated disk")
_BYTES_READ = obs.counter("disk.bytes_read", "BLOB payload bytes read")
_RANDOM_ACCESSES = obs.counter("disk.random_accesses", "Full seek+rotation positionings")
_SHORT_SKIPS = obs.counter("disk.short_skips", "Settle-only forward skips")
_SEQUENTIAL_READS = obs.counter("disk.sequential_reads", "Reads continuing at the head")
_INDEX_NODE_READS = obs.counter("disk.index_node_reads", "Index node pages charged")
_MODEL_MS = obs.counter("disk.model_ms", "Modelled disk milliseconds charged")
_BLOB_READ_MS = obs.histogram("disk.blob_read_ms", "Modelled milliseconds per BLOB read")
_WAL_APPENDS = obs.counter("disk.wal_appends", "Write-ahead-log append charges")
_WAL_PAGES = obs.counter("disk.wal_pages_written", "Pages charged for WAL appends")
_WAL_MS = obs.counter("disk.wal_ms", "Modelled WAL milliseconds charged")
_DATA_WRITES = obs.counter("disk.data_writes", "Page-file write runs charged")
_PAGES_WRITTEN = obs.counter("disk.pages_written", "Pages charged for data writes")
_DATA_WRITE_MS = obs.counter("disk.data_write_ms", "Modelled data-write milliseconds")
_REALTIME_WAIT_MS = obs.counter(
    "disk.realtime_wait_ms", "Real milliseconds slept in realtime mode"
)


@dataclass(frozen=True)
class DiskParameters:
    """Cost constants of the simulated disk.

    ``transfer_mb_per_s`` is the *effective* rate through the object
    store, not the raw media rate — the paper reads tiles through O2,
    whose page handling roughly halves mid-90s media throughput.
    ``blob_overhead_ms`` charges the per-BLOB dereference (catalog lookup,
    buffer hand-over) every tile retrieval pays regardless of size.
    """

    seek_ms: float = 8.0
    rotation_ms: float = 8.33  # one revolution at 7200 rpm
    transfer_mb_per_s: float = 5.0
    blob_overhead_ms: float = 1.0
    settle_ms: float = 2.0
    short_skip_pages: int = 256
    page_size: int = DEFAULT_PAGE_SIZE
    #: When > 0, BLOB reads additionally *sleep* this fraction of their
    #: modelled milliseconds in real time.  The wait happens outside the
    #: disk latch — the modelled device admits concurrent in-flight
    #: requests (command queuing), so snapshot readers overlap their
    #: latency while the positioning charges stay serialized and
    #: deterministic.  Off (0.0) everywhere except concurrency
    #: benchmarks, which need read waits to exist in wall-clock time.
    realtime_scale: float = 0.0

    def transfer_ms_per_page(self) -> float:
        """Milliseconds to stream one page off the platter."""
        return self.page_size / (self.transfer_mb_per_s * 1024 * 1024) * 1000.0

    def random_access_ms(self) -> float:
        """Positioning cost of one random page access."""
        return self.seek_ms + self.rotation_ms / 2.0

    def short_skip_ms(self) -> float:
        """Positioning cost of a short forward skip (track-to-track)."""
        return self.settle_ms


@dataclass(frozen=True)
class CpuParameters:
    """Deterministic post-processing (``t_cpu``) model, 1999-era rates.

    Composing the result array copies cells out of each fetched tile.  A
    tile fully contained in the query region contributes one contiguous
    block copy (``aligned_mb_per_s``); a *border* tile — one that
    straddles the query boundary — must be clipped with strided per-cell
    copying, an order of magnitude slower (``border_mb_per_s``).  This is
    exactly the effect the paper describes: "data has to be copied from
    the border tiles to calculate the end result", which is why regular
    tiling loses ``t_totalcpu`` even when its ``t_o`` is competitive.
    """

    aligned_mb_per_s: float = 80.0
    border_mb_per_s: float = 8.0

    def compose_ms(self, aligned_bytes: int, border_bytes: int) -> float:
        """Modelled milliseconds to compose a result from tile payloads."""
        mb = 1024.0 * 1024.0
        return (
            aligned_bytes / (self.aligned_mb_per_s * mb)
            + border_bytes / (self.border_mb_per_s * mb)
        ) * 1000.0


@dataclass
class DiskCounters:
    """Accumulated activity since the last reset."""

    blob_reads: int = 0
    pages_read: int = 0
    random_accesses: int = 0
    short_skips: int = 0
    sequential_reads: int = 0
    bytes_read: int = 0
    time_ms: float = 0.0
    # WAL appends and page-file data writes are accounted separately from
    # time_ms: write-path cost must not pollute the paper's t_o, which
    # measures retrieval only.
    wal_appends: int = 0
    wal_pages: int = 0
    wal_ms: float = 0.0
    data_writes: int = 0
    pages_written: int = 0
    data_write_ms: float = 0.0

    def snapshot(self) -> "DiskCounters":
        return DiskCounters(**vars(self))


class SimulatedDisk:
    """Charges deterministic time for page accesses against a BLOB store.

    The disk remembers the last page it touched: a read whose first page
    directly follows is sequential and skips the positioning cost, so tile
    clustering order influences ``t_o`` exactly as it would on a real
    spindle.
    """

    def __init__(
        self,
        store: BlobStore,
        parameters: DiskParameters | None = None,
    ) -> None:
        self.store = store
        self.parameters = parameters or DiskParameters(page_size=store.page_size)
        if self.parameters.page_size != store.page_size:
            raise StorageError(
                f"disk page size {self.parameters.page_size} differs from "
                f"store page size {store.page_size}"
            )
        self.counters = DiskCounters()
        self._head_position: int | None = None
        # One latch serializes head movement and counter updates: the
        # positioning regime depends on the previous access, so charges
        # must be atomic for the cost model to stay coherent under
        # concurrent readers.  Reentrant because read_blob/read_blob_run
        # layer over charge_pages.
        self._latch = OrderedLatch("disk", 50, reentrant=True)

    # -- timing primitives -------------------------------------------------

    def charge_pages(self, page_range: PageRange) -> float:
        """Charge the cost of reading one contiguous page range.

        Three positioning regimes: a read continuing exactly where the
        head sits is sequential (no positioning); a short forward skip
        pays only a settle; anything else is a full random access.
        """
        with self._latch:
            return self._charge_pages_locked(page_range)

    def _charge_pages_locked(self, page_range: PageRange) -> float:
        cost = page_range.count * self.parameters.transfer_ms_per_page()
        if self._head_position == page_range.start:
            self.counters.sequential_reads += 1
            _SEQUENTIAL_READS.inc()
        elif (
            self._head_position is not None
            and 0
            < page_range.start - self._head_position
            <= self.parameters.short_skip_pages
        ):
            cost += self.parameters.short_skip_ms()
            self.counters.short_skips += 1
            _SHORT_SKIPS.inc()
        else:
            cost += self.parameters.random_access_ms()
            self.counters.random_accesses += 1
            _RANDOM_ACCESSES.inc()
        self._head_position = page_range.end
        self.counters.pages_read += page_range.count
        self.counters.time_ms += cost
        _PAGES_READ.inc(page_range.count)
        _MODEL_MS.inc(cost)
        return cost

    def charge_index_node(self) -> float:
        """Charge one random page access for a spatial-index node visit."""
        cost = (
            self.parameters.random_access_ms()
            + self.parameters.transfer_ms_per_page()
        )
        with self._latch:
            self.counters.pages_read += 1
            self.counters.random_accesses += 1
            self.counters.time_ms += cost
            self._head_position = None
        _INDEX_NODE_READS.inc()
        _PAGES_READ.inc()
        _RANDOM_ACCESSES.inc()
        _MODEL_MS.inc(cost)
        return cost

    def charge_log_append(self, byte_count: int, fsync: bool = False) -> float:
        """Charge a sequential write-ahead-log append.

        The log is the one strictly sequential write stream in the
        system, so an append pays only transfer time for its pages; a
        synchronous commit (``fsync``) additionally waits half a rotation
        for the platter.  Charged into the separate ``wal_*`` counters —
        durability overhead is reported next to, not inside, the paper's
        ``t_o``.
        """
        pages = pages_needed(byte_count, self.parameters.page_size)
        cost = pages * self.parameters.transfer_ms_per_page()
        if fsync:
            cost += self.parameters.rotation_ms / 2.0
        with self._latch:
            self.counters.wal_appends += 1
            self.counters.wal_pages += pages
            self.counters.wal_ms += cost
        _WAL_APPENDS.inc()
        _WAL_PAGES.inc(pages)
        _WAL_MS.inc(cost)
        return cost

    def charge_data_write(self, page_range: PageRange) -> float:
        """Charge one coalesced page-file write run.

        Positioning follows the same three regimes as reads (the head is
        shared between reads and writes on a real spindle) but the cost
        lands in the separate ``data_write`` counters: page-file flushes,
        like WAL appends, are write-path overhead that must not inflate
        the paper's ``t_o``.  A run of many coalesced blobs pays one
        positioning, which is the point of coalescing.
        """
        with self._latch:
            cost = page_range.count * self.parameters.transfer_ms_per_page()
            if self._head_position == page_range.start:
                pass
            elif (
                self._head_position is not None
                and 0
                < page_range.start - self._head_position
                <= self.parameters.short_skip_pages
            ):
                cost += self.parameters.short_skip_ms()
            else:
                cost += self.parameters.random_access_ms()
            self._head_position = page_range.end
            self.counters.data_writes += 1
            self.counters.pages_written += page_range.count
            self.counters.data_write_ms += cost
        _DATA_WRITES.inc()
        _PAGES_WRITTEN.inc(page_range.count)
        _DATA_WRITE_MS.inc(cost)
        return cost

    # -- blob interface ------------------------------------------------------

    def read_blob(self, blob_id: int) -> tuple[bytes, float]:
        """Fetch a BLOB's bytes and the charged time in milliseconds.

        Charge and byte fetch happen under the disk latch, so the pages
        a reader is charged for are the pages whose bytes it gets even
        while a writer commits concurrently (the store latch ranks above
        the disk latch, see :mod:`repro.storage.latch`).
        """
        with self._latch:
            record = self.store.record(blob_id)
            cost = self._charge_pages_locked(record.pages)
            cost += self.parameters.blob_overhead_ms
            self.counters.time_ms += self.parameters.blob_overhead_ms
            payload = self.store.get(blob_id)
            self.counters.blob_reads += 1
            self.counters.bytes_read += record.byte_size
        _BLOB_READS.inc()
        _BYTES_READ.inc(record.byte_size)
        _MODEL_MS.inc(self.parameters.blob_overhead_ms)
        _BLOB_READ_MS.observe(cost)
        self._realtime_wait(cost)
        return payload, cost

    def read_blob_run(
        self, blob_ids: list[int]
    ) -> list[tuple[bytes, float]]:
        """Fetch a run of page-adjacent BLOBs with one backend call.

        The charges are **identical** to calling :meth:`read_blob` per
        blob: each blob is charged in page order, and because every blob
        after the first continues exactly at the head, they land in the
        sequential regime — the merged run costs what the per-blob
        charges already sum to.  Only the backend byte fetch coalesces
        (``store.get_run``), collapsing N syscalls into one.
        """
        with self._latch:
            costs: list[float] = []
            for blob_id in blob_ids:
                record = self.store.record(blob_id)
                cost = self._charge_pages_locked(record.pages)
                cost += self.parameters.blob_overhead_ms
                self.counters.time_ms += self.parameters.blob_overhead_ms
                self.counters.blob_reads += 1
                self.counters.bytes_read += record.byte_size
                _BLOB_READS.inc()
                _BYTES_READ.inc(record.byte_size)
                _MODEL_MS.inc(self.parameters.blob_overhead_ms)
                _BLOB_READ_MS.observe(cost)
                costs.append(cost)
            payloads = self.store.get_run(blob_ids)
        self._realtime_wait(sum(costs))
        return list(zip(payloads, costs))

    def _realtime_wait(self, model_ms: float) -> None:
        """Sleep the scaled modelled time, outside the latch (see
        :attr:`DiskParameters.realtime_scale`)."""
        scale = self.parameters.realtime_scale
        if scale > 0.0 and model_ms > 0.0:
            time.sleep(model_ms * scale / 1000.0)
            _REALTIME_WAIT_MS.inc(model_ms * scale)

    def blob_pages(self, blob_id: int) -> PageRange:
        return self.store.record(blob_id).pages

    # -- bookkeeping -----------------------------------------------------------

    def reset(self) -> DiskCounters:
        """Zero the counters and forget head position; returns the old
        counters for inspection."""
        with self._latch:
            old = self.counters
            self.counters = DiskCounters()
            self._head_position = None
        return old
