"""BLOB store interface and catalog entries.

Cells of each tile are stored in a separate BLOB (Section 5).  A BLOB
store maps integer BLOB ids to byte payloads placed in page ranges; the
page placement is what the disk model charges for.

Two payload flavours exist:

* *real* — bytes are kept (memory) or written (file backend);
* *virtual* — only the size is recorded and reads synthesise zero bytes.
  Virtual payloads exist for benchmarks whose data volume (the paper's
  375 MB extended cubes) matters only through its page-access pattern.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro import obs
from repro.core.errors import BlobNotFoundError, StorageError
from repro.storage.latch import OrderedLatch
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PageAllocator,
    PageRange,
    pages_needed,
)

_WRITE_RUNS = obs.counter(
    "io.coalesced.write_runs", "Flushes that merged adjacent blobs into one write"
)
_WRITE_BLOBS = obs.counter(
    "io.coalesced.write_blobs", "Blobs written as part of a coalesced run"
)
_WRITE_PAGES = obs.counter(
    "io.coalesced.write_pages", "Pages covered by coalesced write runs"
)
_WRITE_RUN_LEN = obs.histogram(
    "io.coalesced.write_run_length",
    "Blobs per backend write issued by the flush path (1 = not coalesced)",
    buckets=obs.COUNT_BUCKETS,
)


@dataclass
class BlobRecord:
    """Catalog entry for one BLOB."""

    blob_id: int
    byte_size: int
    pages: PageRange
    virtual: bool = False
    codec: str = "none"
    stored_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stored_size is None:
            self.stored_size = self.byte_size


class BlobStore(abc.ABC):
    """Abstract page-placed BLOB store.

    With *deferred writes* enabled (the write-ahead-log mode), ``put``
    holds payloads in a pending buffer instead of writing them to the
    backend; the owning :class:`~repro.storage.tilestore.Database`
    flushes the buffer only after the corresponding log records are
    durable, which is the WAL rule that makes crash recovery redo-only:
    the backend never holds bytes the log does not.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 1:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._allocator = PageAllocator()
        self._catalog: dict[int, BlobRecord] = {}
        self._next_id = 1
        self._deferred = False
        self._pending: dict[int, bytes] = {}
        # page CRCs handed in by callers that already computed them (the
        # ingest pipeline shares one CRC pass between the WAL record and
        # the backend sidecar); consumed once by the backend write
        self._crc_stash: dict[int, list[int]] = {}
        # One latch over catalog, allocator, pending queue, and backend
        # handle: every public entry point takes it, so concurrent
        # readers see either a blob's full (record, payload) or neither.
        # Reentrant because get() layers over record().
        self._latch = OrderedLatch("store", 60, reentrant=True)

    # -- catalog ---------------------------------------------------------

    def record(self, blob_id: int) -> BlobRecord:
        """Catalog entry for a BLOB (raises when unknown)."""
        with self._latch:
            try:
                return self._catalog[blob_id]
            except KeyError:
                raise BlobNotFoundError(f"no blob {blob_id}") from None

    def __contains__(self, blob_id: int) -> bool:
        with self._latch:
            return blob_id in self._catalog

    def __len__(self) -> int:
        with self._latch:
            return len(self._catalog)

    def blob_ids(self) -> Iterator[int]:
        with self._latch:
            return iter(tuple(self._catalog))

    @property
    def total_pages(self) -> int:
        """Pages of the underlying page file (high-water mark)."""
        with self._latch:
            return self._allocator.high_water

    # -- writes ----------------------------------------------------------

    def put(
        self,
        payload: bytes,
        codec: str = "none",
        page_crcs: Optional[list[int]] = None,
    ) -> int:
        """Store a real payload, returning the new BLOB id.

        ``page_crcs`` (one CRC32C per storage page of ``payload``) lets
        a caller that already checksummed the payload spare the backend
        a recomputation; backends without checksums ignore it.
        """
        with self._latch:
            blob_id = self._next_id
            self._next_id += 1
            pages = self._allocator.allocate(
                pages_needed(len(payload), self.page_size)
            )
            record = BlobRecord(
                blob_id, len(payload), pages, virtual=False, codec=codec
            )
            if page_crcs is not None:
                self._crc_stash[blob_id] = page_crcs
            if self._deferred:
                self._pending[blob_id] = payload
            else:
                self._write_payload(record, payload)
                self._crc_stash.pop(blob_id, None)
            self._catalog[blob_id] = record
            return blob_id

    def put_virtual(self, byte_size: int) -> int:
        """Register a size-only BLOB (reads synthesise zeros)."""
        if byte_size < 0:
            raise StorageError(f"negative virtual size {byte_size}")
        with self._latch:
            blob_id = self._next_id
            self._next_id += 1
            pages = self._allocator.allocate(
                pages_needed(byte_size, self.page_size)
            )
            self._catalog[blob_id] = BlobRecord(
                blob_id, byte_size, pages, virtual=True
            )
            return blob_id

    def delete(self, blob_id: int) -> None:
        """Drop a BLOB, returning its pages to the allocator."""
        with self._latch:
            record = self.record(blob_id)
            self._pending.pop(blob_id, None)
            self._crc_stash.pop(blob_id, None)
            if not record.virtual:
                self._delete_payload(record)
            self._allocator.release(record.pages)
            del self._catalog[blob_id]

    def forget(self, blob_id: int) -> None:
        """Roll back an uncommitted :meth:`put` (transaction abort).

        Unlike :meth:`delete` this is not a logged event — the blob never
        became visible to anyone — so it only unwinds the allocation:
        pending payload and stashed CRCs are dropped, pages released, the
        catalog entry removed.  Unknown ids are a no-op (idempotent)."""
        with self._latch:
            record = self._catalog.pop(blob_id, None)
            if record is None:
                return
            was_pending = self._pending.pop(blob_id, None) is not None
            self._crc_stash.pop(blob_id, None)
            if not record.virtual and not was_pending:
                # Non-deferred mode wrote through; undo the backend write.
                self._delete_payload(record)
            self._allocator.release(record.pages)

    def restore(self, record: BlobRecord, payload: Optional[bytes]) -> None:
        """Recreate a BLOB at an exact id and page placement (WAL replay).

        Unlike :meth:`put`, the placement is dictated by the caller — the
        log recorded where the bytes lived, and redo must put them back
        there.  Restoring an id already in the catalog is an error when
        the placement differs (log/checkpoint disagreement) and a no-op
        when it matches (idempotent re-replay).
        """
        with self._latch:
            existing = self._catalog.get(record.blob_id)
            if existing is not None:
                if existing.pages != record.pages:
                    raise StorageError(
                        f"blob {record.blob_id} already placed at "
                        f"{existing.pages}, log says {record.pages}"
                    )
                return
            self._allocator.reserve(record.pages)
            self._catalog[record.blob_id] = record
            self._next_id = max(self._next_id, record.blob_id + 1)
            if not record.virtual:
                if payload is None:
                    raise StorageError(
                        f"restore of real blob {record.blob_id} needs a payload"
                    )
                self._write_payload(record, payload)

    # -- deferred writes (write-ahead-log ordering) ----------------------

    def set_deferred_writes(self, deferred: bool) -> None:
        """Toggle write-behind mode; flushes nothing by itself."""
        with self._latch:
            self._deferred = deferred

    @property
    def pending_writes(self) -> int:
        """Number of payloads buffered but not yet on the backend."""
        with self._latch:
            return len(self._pending)

    def take_pending(self) -> tuple[int, ...]:
        """Snapshot the pending ids (a committing transaction's writes).

        The entries stay buffered — and readable via :meth:`get` — until
        :meth:`flush_ids` lands them on the backend, so a concurrent
        reader between commit-publish and flush still gets the bytes."""
        with self._latch:
            return tuple(self._pending)

    def flush_pending(self) -> list[PageRange]:
        """Write every buffered payload to the backend, coalesced.

        Payloads are sorted by page placement and **page-adjacent blobs
        merge into one contiguous backend write** — a batch of tiles
        allocated back-to-back (the common ingest case) hits the backend
        as a single run instead of one call per tile.  Called after the
        WAL commit record is durable; returns the page range of every
        run written (the disk model charges one positioning per run).
        """
        with self._latch:
            return self._flush_locked(tuple(self._pending))

    def flush_ids(self, blob_ids: Sequence[int]) -> list[PageRange]:
        """Flush only the given pending ids (one transaction's writes).

        Concurrent transactions each flush their own snapshot from
        :meth:`take_pending`; ids no longer pending are skipped."""
        with self._latch:
            return self._flush_locked(
                [b for b in blob_ids if b in self._pending]
            )

    def _flush_locked(self, blob_ids: Sequence[int]) -> list[PageRange]:
        ordered = sorted(blob_ids, key=lambda b: self._catalog[b].pages.start)
        runs: list[list[int]] = []
        for blob_id in ordered:
            pages = self._catalog[blob_id].pages
            if runs and self._catalog[runs[-1][-1]].pages.end == pages.start:
                runs[-1].append(blob_id)
            else:
                runs.append([blob_id])
        written: list[PageRange] = []
        for run in runs:
            records = [self._catalog[b] for b in run]
            self._write_payload_run(records, [self._pending[b] for b in run])
            for blob_id in run:
                self._crc_stash.pop(blob_id, None)
            first, last = records[0].pages, records[-1].pages
            written.append(PageRange(first.start, last.end - first.start))
            _WRITE_RUN_LEN.observe(len(run))
            if len(run) > 1:
                _WRITE_RUNS.inc()
                _WRITE_BLOBS.inc(len(run))
                _WRITE_PAGES.inc(last.end - first.start)
        for blob_id in ordered:
            self._pending.pop(blob_id, None)
        return written

    def discard_pending(self) -> tuple[int, ...]:
        """Drop buffered payloads (transaction abort); returns their ids.

        The catalog entries stay — the in-memory database that issued the
        aborted transaction is considered dead (crash semantics) and must
        be reopened from the durable state.
        """
        with self._latch:
            dropped = tuple(self._pending)
            self._pending.clear()
            for blob_id in dropped:
                self._crc_stash.pop(blob_id, None)
            return dropped

    def is_pending(self, blob_id: int) -> bool:
        """Whether the payload is still buffered (not on the backend)."""
        with self._latch:
            return blob_id in self._pending

    # -- reads -----------------------------------------------------------

    def get(self, blob_id: int) -> bytes:
        """Fetch a BLOB payload (zeros for virtual BLOBs)."""
        with self._latch:
            record = self.record(blob_id)
            if record.virtual:
                return bytes(record.byte_size)
            pending = self._pending.get(blob_id)
            if pending is not None:
                return pending
            return self._read_payload(record)

    def get_run(self, blob_ids: Sequence[int]) -> list[bytes]:
        """Fetch several page-adjacent BLOBs; backends may coalesce.

        The base implementation is a plain loop; ``FileBlobStore``
        overrides it with one contiguous read.  Callers guarantee the
        blobs are real, flushed, and page-adjacent in the given order.
        """
        return [self.get(blob_id) for blob_id in blob_ids]

    # -- backend hooks -----------------------------------------------------

    @abc.abstractmethod
    def _write_payload(self, record: BlobRecord, payload: bytes) -> None:
        """Persist the payload at the record's page range."""

    def _write_payload_run(
        self, records: Sequence[BlobRecord], payloads: Sequence[bytes]
    ) -> None:
        """Persist several page-adjacent payloads (one coalesced run).

        Backends that can write contiguously override this; the default
        falls back to one :meth:`_write_payload` per blob.
        """
        for record, payload in zip(records, payloads):
            self._write_payload(record, payload)

    @abc.abstractmethod
    def _read_payload(self, record: BlobRecord) -> bytes:
        """Load the payload bytes for a real BLOB."""

    @abc.abstractmethod
    def _delete_payload(self, record: BlobRecord) -> None:
        """Release backend resources of a real BLOB."""
