"""BLOB store interface and catalog entries.

Cells of each tile are stored in a separate BLOB (Section 5).  A BLOB
store maps integer BLOB ids to byte payloads placed in page ranges; the
page placement is what the disk model charges for.

Two payload flavours exist:

* *real* — bytes are kept (memory) or written (file backend);
* *virtual* — only the size is recorded and reads synthesise zero bytes.
  Virtual payloads exist for benchmarks whose data volume (the paper's
  375 MB extended cubes) matters only through its page-access pattern.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.errors import BlobNotFoundError, StorageError
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PageAllocator,
    PageRange,
    pages_needed,
)


@dataclass
class BlobRecord:
    """Catalog entry for one BLOB."""

    blob_id: int
    byte_size: int
    pages: PageRange
    virtual: bool = False
    codec: str = "none"
    stored_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stored_size is None:
            self.stored_size = self.byte_size


class BlobStore(abc.ABC):
    """Abstract page-placed BLOB store."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size < 1:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._allocator = PageAllocator()
        self._catalog: dict[int, BlobRecord] = {}
        self._next_id = 1

    # -- catalog ---------------------------------------------------------

    def record(self, blob_id: int) -> BlobRecord:
        """Catalog entry for a BLOB (raises when unknown)."""
        try:
            return self._catalog[blob_id]
        except KeyError:
            raise BlobNotFoundError(f"no blob {blob_id}") from None

    def __contains__(self, blob_id: int) -> bool:
        return blob_id in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    def blob_ids(self) -> Iterator[int]:
        return iter(self._catalog)

    @property
    def total_pages(self) -> int:
        """Pages of the underlying page file (high-water mark)."""
        return self._allocator.high_water

    # -- writes ----------------------------------------------------------

    def put(self, payload: bytes, codec: str = "none") -> int:
        """Store a real payload, returning the new BLOB id."""
        blob_id = self._next_id
        self._next_id += 1
        pages = self._allocator.allocate(pages_needed(len(payload), self.page_size))
        record = BlobRecord(
            blob_id, len(payload), pages, virtual=False, codec=codec
        )
        self._write_payload(record, payload)
        self._catalog[blob_id] = record
        return blob_id

    def put_virtual(self, byte_size: int) -> int:
        """Register a size-only BLOB (reads synthesise zeros)."""
        if byte_size < 0:
            raise StorageError(f"negative virtual size {byte_size}")
        blob_id = self._next_id
        self._next_id += 1
        pages = self._allocator.allocate(pages_needed(byte_size, self.page_size))
        self._catalog[blob_id] = BlobRecord(
            blob_id, byte_size, pages, virtual=True
        )
        return blob_id

    def delete(self, blob_id: int) -> None:
        """Drop a BLOB, returning its pages to the allocator."""
        record = self.record(blob_id)
        if not record.virtual:
            self._delete_payload(record)
        self._allocator.release(record.pages)
        del self._catalog[blob_id]

    # -- reads -----------------------------------------------------------

    def get(self, blob_id: int) -> bytes:
        """Fetch a BLOB payload (zeros for virtual BLOBs)."""
        record = self.record(blob_id)
        if record.virtual:
            return bytes(record.byte_size)
        return self._read_payload(record)

    # -- backend hooks -----------------------------------------------------

    @abc.abstractmethod
    def _write_payload(self, record: BlobRecord, payload: bytes) -> None:
        """Persist the payload at the record's page range."""

    @abc.abstractmethod
    def _read_payload(self, record: BlobRecord) -> bytes:
        """Load the payload bytes for a real BLOB."""

    @abc.abstractmethod
    def _delete_payload(self, record: BlobRecord) -> None:
        """Release backend resources of a real BLOB."""
