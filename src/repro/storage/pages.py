"""Page abstraction and page-range allocation.

The storage system reads and writes whole pages (Section 2: "accesses by
the storage system are to whole pages"), so tile sizes should approximate
integral multiples of the page size.  BLOBs occupy contiguous page ranges
allocated by :class:`PageAllocator`; freed ranges are recycled first-fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import PageError

#: Default page size in bytes (the database page of the cost formulas).
DEFAULT_PAGE_SIZE = 8192


def pages_needed(byte_count: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of whole pages required to hold ``byte_count`` bytes."""
    if byte_count < 0:
        raise PageError(f"negative byte count {byte_count}")
    if page_size < 1:
        raise PageError(f"page size must be positive, got {page_size}")
    return max(1, -(-byte_count // page_size))


@dataclass(frozen=True)
class PageRange:
    """A contiguous run of pages ``[start, start + count)``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.count < 1:
            raise PageError(f"invalid page range {self.start}+{self.count}")

    @property
    def end(self) -> int:
        """One past the last page id."""
        return self.start + self.count

    def follows(self, other: "PageRange") -> bool:
        """True when this range starts exactly where ``other`` ends —
        reading it after ``other`` needs no seek."""
        return self.start == other.end


class PageAllocator:
    """First-fit allocator of contiguous page ranges with free-list reuse."""

    def __init__(self) -> None:
        self._next_page = 0
        self._free: list[PageRange] = []

    @property
    def high_water(self) -> int:
        """Total pages ever allocated (ignoring reuse) — file size proxy."""
        return self._next_page

    def allocate(self, count: int) -> PageRange:
        """Allocate a contiguous run of ``count`` pages."""
        if count < 1:
            raise PageError(f"cannot allocate {count} pages")
        for i, hole in enumerate(self._free):
            if hole.count >= count:
                taken = PageRange(hole.start, count)
                if hole.count == count:
                    del self._free[i]
                else:
                    self._free[i] = PageRange(hole.start + count, hole.count - count)
                return taken
        taken = PageRange(self._next_page, count)
        self._next_page += count
        return taken

    def reserve(self, page_range: PageRange) -> None:
        """Mark an exact range as allocated (WAL replay re-applies logged
        placements instead of choosing new ones).

        The range must be entirely unallocated: inside free holes, past
        the high-water mark, or a mix of both.  A collision with pages
        already in use is a :class:`PageError` — replaying a log record
        onto a checkpoint that already occupies those pages means the log
        and the checkpoint disagree.
        """
        remaining = page_range
        if remaining.start >= self._next_page:
            # Entirely in virgin territory; any gap becomes a hole.
            if remaining.start > self._next_page:
                self._free.append(
                    PageRange(self._next_page, remaining.start - self._next_page)
                )
            self._next_page = remaining.end
            return
        covered = 0
        keep: list[PageRange] = []
        for hole in self._free:
            overlap_start = max(hole.start, remaining.start)
            overlap_end = min(hole.end, remaining.end)
            if overlap_start >= overlap_end:
                keep.append(hole)
                continue
            covered += overlap_end - overlap_start
            if hole.start < overlap_start:
                keep.append(PageRange(hole.start, overlap_start - hole.start))
            if overlap_end < hole.end:
                keep.append(PageRange(overlap_end, hole.end - overlap_end))
        if remaining.end > self._next_page:
            covered += remaining.end - self._next_page
            self._next_page = remaining.end
        if covered != remaining.count:
            raise PageError(
                f"cannot reserve {page_range}: "
                f"{remaining.count - covered} pages already allocated"
            )
        keep.sort(key=lambda r: r.start)
        self._free = keep

    def release(self, page_range: PageRange) -> None:
        """Return a range to the free list (coalescing adjacent holes)."""
        merged = page_range
        keep: list[PageRange] = []
        for hole in self._free:
            if hole.end == merged.start:
                merged = PageRange(hole.start, hole.count + merged.count)
            elif merged.end == hole.start:
                merged = PageRange(merged.start, merged.count + hole.count)
            else:
                keep.append(hole)
        keep.append(merged)
        keep.sort(key=lambda r: r.start)
        self._free = keep

    def free_pages(self) -> int:
        """Total pages currently in the free list."""
        return sum(hole.count for hole in self._free)

    def free_ranges(self) -> tuple[PageRange, ...]:
        """The current free holes, ordered by start page (for sidecars)."""
        return tuple(self._free)

    def restore_free_ranges(self, ranges) -> None:
        """Replace the free list (reloading a persisted allocator)."""
        holes = sorted(ranges, key=lambda r: r.start)
        for hole in holes:
            if hole.end > self._next_page:
                raise PageError(
                    f"free range {hole} beyond high water {self._next_page}"
                )
        for earlier, later in zip(holes, holes[1:]):
            if earlier.end > later.start:
                raise PageError(f"free ranges {earlier} and {later} overlap")
        self._free = holes
