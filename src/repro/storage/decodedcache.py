"""Decoded-tile cache: LRU of post-decompress numpy tile arrays.

The third level of the read hierarchy.  Below it sit the simulated disk
(charges modelled ``t_o``) and the :class:`~repro.storage.bufferpool.
BufferPool` (caches *compressed* BLOB payloads, saving the disk charge but
not the CPU work).  A buffer-pool hit still pays ``decompress`` plus
``np.frombuffer`` on every access; this cache keeps the finished article —
the decoded, reshaped, read-only tile array — keyed by BLOB id, so a
repeat read of a hot tile costs one dict lookup.

Entries are byte-budgeted LRU like the pool, but budgeted on *decoded*
bytes (``array.nbytes``), which for compressed tiles is larger than the
pool's footprint for the same tile.  Arrays handed out are read-only:
callers compose results by copying out of them (or serve them zero-copy
on the single-tile fast path), so a cached tile can never be corrupted by
a consumer.

Admission can be split in two for the parallel read pipeline: the
coordinator thread decides evictions in deterministic page order while
worker threads are still decoding, because the decoded size of a tile is
known from its domain and dtype before its bytes exist.  The plain
:meth:`put` covers the serial paths.

All activity is mirrored into the process-wide :mod:`repro.obs` registry
under ``cache.decoded.*``; the ``used_bytes`` gauge is delta-maintained,
so several caches (one per :class:`~repro.storage.tilestore.Database`)
sum instead of overwriting each other.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro import obs
from repro.core.errors import StorageError
from repro.storage.latch import OrderedLatch

_HITS = obs.counter("cache.decoded.hits", "Decoded-tile cache hits")
_MISSES = obs.counter("cache.decoded.misses", "Decoded-tile cache misses")
_EVICTIONS = obs.counter(
    "cache.decoded.evictions", "LRU evictions of decoded tiles"
)
_BYTES_ADMITTED = obs.counter(
    "cache.decoded.bytes_admitted", "Decoded bytes admitted"
)
_BYTES_EVICTED = obs.counter(
    "cache.decoded.bytes_evicted", "Decoded bytes evicted"
)
_INVALIDATIONS = obs.counter(
    "cache.decoded.invalidations", "Entries dropped after update/delete"
)
_USED_BYTES = obs.gauge(
    "cache.decoded.used_bytes",
    "Decoded bytes currently cached (summed over all caches)",
)
_ADMITTED_SIZE = obs.histogram(
    "cache.decoded.admitted_size_bytes",
    "Decoded tile size per cache admission",
    buckets=obs.BYTE_BUCKETS,
)


class DecodedTileCache:
    """Byte-budgeted LRU of read-only decoded tile arrays, keyed by BLOB id."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise StorageError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Guards the LRU table, tallies, and used-byte accounting (local
        # count + gauge delta move together) — see DESIGN §11.
        self._latch = OrderedLatch("cache.decoded", 70)

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------

    def get(self, blob_id: int) -> Optional[np.ndarray]:
        """The decoded tile, or ``None`` on a miss (counted either way)."""
        with self._latch:
            array = self._entries.get(blob_id)
            if array is None:
                self.misses += 1
                _MISSES.inc()
                return None
            self._entries.move_to_end(blob_id)
            self.hits += 1
            _HITS.inc()
            return array

    def peek(self, blob_id: int) -> Optional[np.ndarray]:
        """Like :meth:`get` but without counters or LRU promotion."""
        with self._latch:
            return self._entries.get(blob_id)

    def put(self, blob_id: int, array: np.ndarray) -> np.ndarray:
        """Admit a decoded tile; returns the (read-only) cached array.

        A tile larger than the whole budget is not admitted (mirroring the
        buffer pool); the read-only view is returned regardless, so
        callers can always use the result of ``put``.
        """
        array = self._readonly(array)
        size = array.nbytes
        if size > self.capacity_bytes:
            return array
        with self._latch:
            previous = self._entries.pop(blob_id, None)
            if previous is not None:
                self._discard_bytes(previous.nbytes)
            self._evict_down_to(self.capacity_bytes - size)
            self._entries[blob_id] = array
            self._used += size
            _BYTES_ADMITTED.inc(size)
            _ADMITTED_SIZE.observe(size)
            _USED_BYTES.inc(size)
        return array

    @staticmethod
    def _readonly(array: np.ndarray) -> np.ndarray:
        if array.flags.writeable:
            array = array.view()
            array.flags.writeable = False
        return array

    def _evict_down_to(self, budget: int) -> None:
        while self._used > budget and self._entries:
            _victim, evicted = self._entries.popitem(last=False)
            self._discard_bytes(evicted.nbytes)
            self.evictions += 1
            _EVICTIONS.inc()
            _BYTES_EVICTED.inc(evicted.nbytes)

    def _discard_bytes(self, size: int) -> None:
        self._used -= size
        _USED_BYTES.dec(size)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, blob_id: int) -> None:
        """Drop one entry (called on BLOB update/delete)."""
        with self._latch:
            array = self._entries.pop(blob_id, None)
            if array is not None:
                self._discard_bytes(array.nbytes)
                _INVALIDATIONS.inc()

    def clear(self) -> None:
        """Empty the cache (cold measurement boundary)."""
        with self._latch:
            self._discard_bytes(self._used)
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the local hit/miss/eviction tallies (measurement boundary).

        Contents are untouched — clearing data and clearing counters are
        different decisions; ``Database.reset_clock`` does both."""
        with self._latch:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, blob_id: object) -> bool:
        return blob_id in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"DecodedTileCache(used={self._used}/{self.capacity_bytes} B, "
            f"entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
