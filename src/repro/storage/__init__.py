"""Storage substrate: pages, BLOBs, disk model, buffer pool, tile store,
write-ahead log, fault injection, and crash recovery."""

from repro.storage.backends import FileBlobStore, MemoryBlobStore
from repro.storage.blob import BlobRecord, BlobStore
from repro.storage.catalog import (
    RecoveryReport,
    create_database,
    open_database,
    save_database,
)
from repro.storage.checksum import crc32c, page_checksums, verify_page_checksums
from repro.storage.bufferpool import BufferPool
from repro.storage.compression import (
    compress,
    decompress,
    known_codecs,
    rle_decode,
    rle_encode,
    select_codec,
)
from repro.storage.decodedcache import DecodedTileCache
from repro.storage.disk import (
    CpuParameters,
    DiskCounters,
    DiskParameters,
    SimulatedDisk,
)
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PageAllocator,
    PageRange,
    pages_needed,
)
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    FaultyFile,
    SimulatedCrash,
    fsync_file,
)
from repro.storage.fsck import FsckIssue, FsckReport, fsck_database
from repro.storage.pipeline import FetchedTile, fetch_tile, fetch_tiles
from repro.storage.tilestore import (
    DURABILITY_MODES,
    Database,
    StoredMDD,
    TileEntry,
    default_index_factory,
)
from repro.storage.wal import WalScan, WriteAheadLog, scan_wal

__all__ = [
    "BlobRecord",
    "BlobStore",
    "BufferPool",
    "Database",
    "DEFAULT_PAGE_SIZE",
    "DURABILITY_MODES",
    "CpuParameters",
    "DecodedTileCache",
    "DiskCounters",
    "DiskParameters",
    "FaultInjector",
    "FaultPlan",
    "FaultyFile",
    "FetchedTile",
    "FileBlobStore",
    "FsckIssue",
    "FsckReport",
    "MemoryBlobStore",
    "PageAllocator",
    "PageRange",
    "RecoveryReport",
    "SimulatedCrash",
    "SimulatedDisk",
    "StoredMDD",
    "TileEntry",
    "WalScan",
    "WriteAheadLog",
    "compress",
    "crc32c",
    "create_database",
    "decompress",
    "default_index_factory",
    "fetch_tile",
    "fetch_tiles",
    "fsck_database",
    "fsync_file",
    "known_codecs",
    "page_checksums",
    "pages_needed",
    "rle_decode",
    "rle_encode",
    "open_database",
    "save_database",
    "scan_wal",
    "select_codec",
    "verify_page_checksums",
]
