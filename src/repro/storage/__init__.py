"""Storage substrate: pages, BLOBs, disk model, buffer pool, tile store."""

from repro.storage.backends import FileBlobStore, MemoryBlobStore
from repro.storage.blob import BlobRecord, BlobStore
from repro.storage.catalog import open_database, save_database
from repro.storage.bufferpool import BufferPool
from repro.storage.compression import (
    compress,
    decompress,
    known_codecs,
    rle_decode,
    rle_encode,
    select_codec,
)
from repro.storage.decodedcache import DecodedTileCache
from repro.storage.disk import (
    CpuParameters,
    DiskCounters,
    DiskParameters,
    SimulatedDisk,
)
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    PageAllocator,
    PageRange,
    pages_needed,
)
from repro.storage.pipeline import FetchedTile, fetch_tile, fetch_tiles
from repro.storage.tilestore import (
    Database,
    StoredMDD,
    TileEntry,
    default_index_factory,
)

__all__ = [
    "BlobRecord",
    "BlobStore",
    "BufferPool",
    "Database",
    "DEFAULT_PAGE_SIZE",
    "CpuParameters",
    "DecodedTileCache",
    "DiskCounters",
    "DiskParameters",
    "FetchedTile",
    "FileBlobStore",
    "MemoryBlobStore",
    "PageAllocator",
    "PageRange",
    "SimulatedDisk",
    "StoredMDD",
    "TileEntry",
    "compress",
    "decompress",
    "default_index_factory",
    "fetch_tile",
    "fetch_tiles",
    "known_codecs",
    "pages_needed",
    "rle_decode",
    "rle_encode",
    "open_database",
    "save_database",
    "select_codec",
]
