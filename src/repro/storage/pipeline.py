"""Parallel read pipeline: overlap fetch and decode across a query's tiles.

The hot path of a range read is, per intersected tile: BLOB retrieval
(buffer pool, then simulated disk), ``decompress``, ``np.frombuffer``.
This module turns that per-tile chain into a small pipeline:

* the **coordinator** (calling thread) walks the tiles in page order and
  does everything whose *order matters* — decoded-cache lookups, buffer
  pool lookups/admissions, and the simulated disk charges, whose
  seek/settle/sequential regimes depend on head position.  Costs are
  therefore charged page-ordered and are bit-identical whether the
  pipeline runs serial or parallel;
* **workers** (an optional :class:`~concurrent.futures.ThreadPoolExecutor`
  owned by the :class:`~repro.storage.tilestore.Database`) run the
  order-free CPU work — ``decompress`` + ``frombuffer`` — concurrently.
  ``zlib`` releases the GIL, so compressed tiles genuinely overlap;
* **decoded-cache admissions** happen after the whole batch, in page
  order, in *both* modes, so the LRU evolves identically and a tiny cache
  cannot make serial and parallel disagree on later hits.

With ``io_workers=1`` (the default) no executor exists and the pipeline
degrades to the straight-line serial loop, keeping historical timings
reproducible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro import obs
from repro.index.zonemap import CellPredicate, TileSynopsis, partial_synopsis
from repro.storage.compression import decompress

if TYPE_CHECKING:  # pragma: no cover - annotations only (avoids a cycle)
    from repro.core.geometry import MInterval
    from repro.storage.tilestore import Database, TileEntry

_WORKERS_BUSY = obs.gauge(
    "pipeline.workers_busy", "Decode tasks currently running on workers"
)
_PARALLEL_BATCHES = obs.counter(
    "pipeline.parallel_batches", "Tile batches fetched through the worker pool"
)
_TILES_DECODED = obs.counter(
    "pipeline.tiles_decoded", "Tiles decompressed + reshaped (any mode)"
)
_DECODE_MS = obs.histogram(
    "pipeline.decode_ms", "Wall milliseconds per tile decode task"
)
_READ_RUNS = obs.counter(
    "io.coalesced.read_runs", "Fetches that merged adjacent blobs into one read"
)
_READ_BLOBS = obs.counter(
    "io.coalesced.read_blobs", "Blobs fetched as part of a coalesced run"
)
_READ_RUN_LEN = obs.histogram(
    "io.coalesced.read_run_length",
    "Blobs per backend read issued by the fetch path (1 = not coalesced)",
    buckets=obs.COUNT_BUCKETS,
)
_PARTIAL_AGGS = obs.counter(
    "pipeline.partial_aggregates",
    "Per-tile partial aggregates computed on the pushdown path",
)
_PARTIAL_LIVE_BYTES = obs.gauge(
    "pipeline.partial_live_bytes",
    "Decoded tile bytes currently alive in the partial-aggregate phase",
)


@dataclass
class FetchedTile:
    """One tile's outcome: charged cost, accounting sizes, decoded cells.

    ``array`` is the decoded, read-only-when-cached tile array; ``None``
    for virtual tiles (their cells are synthesised defaults).  ``cost`` is
    the modelled disk milliseconds charged for this tile (0.0 on a buffer
    pool or decoded-cache hit).  ``payload_bytes`` is the stored payload
    size, counted whether or not the payload was actually materialised.
    """

    entry: "TileEntry"
    cost: float
    payload_bytes: int
    array: Optional[np.ndarray]
    decoded_hit: bool


def _decode(payload: bytes, codec: str, dtype, shape) -> np.ndarray:
    """The order-free CPU half: decompress and shape one tile's cells."""
    started = time.perf_counter()
    raw = decompress(payload, codec)
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    _DECODE_MS.observe((time.perf_counter() - started) * 1000.0)
    _TILES_DECODED.inc()
    return array


def _decode_task(
    payload: bytes,
    codec: str,
    dtype,
    shape,
    parent: Optional[obs.SpanContext] = None,
) -> np.ndarray:
    """Worker wrapper around :func:`_decode` tracking pool occupancy.

    ``parent`` is the coordinator's span context, captured before the
    submit; adopting it keeps the worker's span inside the query's tree
    instead of starting an orphan root on the pool thread.
    """
    _WORKERS_BUSY.inc()
    try:
        with obs.span("pipeline.decode", parent=parent, bytes=len(payload)):
            return _decode(payload, codec, dtype, shape)
    finally:
        _WORKERS_BUSY.dec()


def _coalesce_runs(
    database: "Database",
    items: Sequence[tuple[int, "TileEntry"]],
) -> list[list[tuple[int, "TileEntry"]]]:
    """Group page-adjacent cache misses into contiguous read runs.

    Coalescing applies only without a buffer pool (pool lookups and
    admissions are inherently per-blob) and never spans virtual or
    still-pending blobs.  Order is preserved, so the per-blob disk
    charges are issued in exactly the per-item sequence.
    """
    store = database.store
    if database.pool is not None:
        return [[item] for item in items]
    runs: list[list[tuple[int, "TileEntry"]]] = []
    prev_end: Optional[int] = None
    for item in items:
        entry = item[1]
        if entry.virtual or store.is_pending(entry.blob_id):
            runs.append([item])
            prev_end = None
            continue
        pages = store.record(entry.blob_id).pages
        if prev_end is not None and pages.start == prev_end:
            runs[-1].append(item)
        else:
            runs.append([item])
        prev_end = pages.end
    return runs


def fetch_tiles(
    database: "Database",
    entries: Sequence["TileEntry"],
    dtype,
) -> list[FetchedTile]:
    """Fetch and decode a page-ordered batch of tiles.

    Returns one :class:`FetchedTile` per entry, in the given order.  Disk
    and pool interactions happen on the calling thread in entry order;
    only decoding is (optionally) offloaded.  Page-adjacent misses merge
    into one backend read (:meth:`SimulatedDisk.read_blob_run`) whose
    per-blob charges equal the serial ones — adjacent follow-on reads
    are in the sequential regime either way — so the result (arrays,
    costs, cache counters) is identical for any ``io_workers`` setting
    and with coalescing on or off.
    """
    cache = database.decoded_cache
    executor = database.pipeline_executor() if len(entries) > 1 else None
    trace_ctx = obs.tracer.current_context() if executor is not None else None
    fetched: list[Optional[FetchedTile]] = [None] * len(entries)
    pending: list[tuple[int, float, int]] = []  # (index, cost, payload_bytes)
    futures = []
    to_fetch: list[tuple[int, "TileEntry"]] = []

    for position, entry in enumerate(entries):
        if cache is not None and not entry.virtual:
            array = cache.get(entry.blob_id)
            if array is not None:
                fetched[position] = FetchedTile(
                    entry,
                    cost=0.0,
                    payload_bytes=database.store.record(entry.blob_id).byte_size,
                    array=array,
                    decoded_hit=True,
                )
                continue
        to_fetch.append((position, entry))

    def dispatch(position: int, entry: "TileEntry", payload: bytes, cost: float) -> None:
        if entry.virtual:
            fetched[position] = FetchedTile(
                entry, cost, len(payload), array=None, decoded_hit=False
            )
            return
        shape = entry.domain.shape
        if executor is None:
            array = _decode(payload, entry.codec, dtype, shape)
            fetched[position] = FetchedTile(
                entry, cost, len(payload), array, decoded_hit=False
            )
        else:
            pending.append((position, cost, len(payload)))
            futures.append(
                executor.submit(
                    _decode_task,
                    payload,
                    entry.codec,
                    dtype,
                    shape,
                    parent=trace_ctx,
                )
            )

    for run in _coalesce_runs(database, to_fetch):
        _READ_RUN_LEN.observe(len(run))
        if len(run) == 1:
            position, entry = run[0]
            payload, cost = database.read_blob(entry.blob_id)
            dispatch(position, entry, payload, cost)
        else:
            _READ_RUNS.inc()
            _READ_BLOBS.inc(len(run))
            results = database.disk.read_blob_run(
                [entry.blob_id for _, entry in run]
            )
            for (position, entry), (payload, cost) in zip(run, results):
                dispatch(position, entry, payload, cost)

    if futures:
        _PARALLEL_BATCHES.inc()
        for (position, cost, payload_bytes), future in zip(pending, futures):
            fetched[position] = FetchedTile(
                entries[position],
                cost,
                payload_bytes,
                future.result(),
                decoded_hit=False,
            )

    # Deferred admissions, page-ordered in every mode: admitting only after
    # the batch's lookups keeps the LRU trajectory independent of worker
    # completion order (and of the serial/parallel choice).
    if cache is not None:
        for tile in fetched:
            assert tile is not None
            if tile.array is not None and not tile.decoded_hit:
                tile.array = cache.put(tile.entry.blob_id, tile.array)
    return fetched  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Aggregation pushdown: decode -> clip -> mask -> reduce, on the workers
# ---------------------------------------------------------------------------


@dataclass
class TilePartial:
    """One tile's partial aggregate: charges plus an exact value summary.

    ``partial`` summarises the decoded, region-clipped, predicate-masked
    cells (:func:`~repro.index.zonemap.partial_synopsis`); ``None`` for
    virtual tiles, whose clipped cells are all defaults — the caller
    accounts them as default fill.  The decoded array itself is **not**
    retained: the worker reduces it and drops it, which is what bounds
    the pushdown path's peak memory at one tile per worker.
    """

    entry: "TileEntry"
    part: "MInterval"
    cost: float
    payload_bytes: int
    partial: Optional[TileSynopsis]
    decoded_hit: bool


class _PeakTracker:
    """Concurrently-live decoded bytes, and the high-water mark."""

    def __init__(self) -> None:
        self._latch = threading.Lock()
        self._live = 0
        self.peak = 0

    def acquire(self, nbytes: int) -> None:
        with self._latch:
            self._live += nbytes
            if self._live > self.peak:
                self.peak = self._live
        _PARTIAL_LIVE_BYTES.inc(nbytes)

    def release(self, nbytes: int) -> None:
        with self._latch:
            self._live -= nbytes
        _PARTIAL_LIVE_BYTES.dec(nbytes)


def _reduce_tile(
    array: np.ndarray,
    entry: "TileEntry",
    part: "MInterval",
    predicate: Optional[CellPredicate],
    default_cell: np.ndarray,
) -> TileSynopsis:
    """Clip a decoded tile to its region part, mask it, summarise it."""
    vals = array[part.to_slices(entry.domain.lowest)]
    if predicate is not None:
        vals = np.where(predicate.mask(vals), vals, default_cell)
    summary = partial_synopsis(vals)
    _PARTIAL_AGGS.inc()
    return summary


def _partial_task(
    payload: bytes,
    entry: "TileEntry",
    part: "MInterval",
    dtype,
    predicate: Optional[CellPredicate],
    default_cell: np.ndarray,
    peak: _PeakTracker,
    parent: Optional[obs.SpanContext] = None,
) -> TileSynopsis:
    """Worker half of the pushdown: decode, reduce, drop the array."""
    _WORKERS_BUSY.inc()
    try:
        with obs.span(
            "pipeline.partial_agg", parent=parent, bytes=len(payload)
        ):
            array = _decode(payload, entry.codec, dtype, entry.domain.shape)
            peak.acquire(array.nbytes)
            try:
                return _reduce_tile(array, entry, part, predicate, default_cell)
            finally:
                peak.release(array.nbytes)
    finally:
        _WORKERS_BUSY.dec()


def fetch_tile_partials(
    database: "Database",
    items: Sequence[tuple["TileEntry", "MInterval"]],
    dtype,
    predicate: Optional[CellPredicate] = None,
    default: object = 0,
) -> tuple[list[TilePartial], int]:
    """Fetch tiles and reduce each to a partial aggregate on the workers.

    The coordinator keeps the exact charging protocol of
    :func:`fetch_tiles` — decoded-cache lookups first, then page-ordered
    (coalesced) disk/pool interactions on the calling thread — but the
    workers reduce each decoded tile to a
    :class:`~repro.index.zonemap.TileSynopsis` partial instead of
    returning its cells, so the query box is never materialized and peak
    memory stays at one decoded tile per worker plus the partials table.
    Decoded arrays are **not** admitted to the decoded cache (a
    retain-all admission pass would defeat the memory bound; cache hits
    are still consulted and answered).

    Returns the partials in ``items`` order plus the observed peak of
    concurrently-live decoded bytes.
    """
    executor = database.pipeline_executor() if len(items) > 1 else None
    trace_ctx = obs.tracer.current_context() if executor is not None else None
    cache = database.decoded_cache
    default_cell = np.asarray(default, dtype=dtype)
    peak = _PeakTracker()
    fetched: list[Optional[TilePartial]] = [None] * len(items)
    pending: list[tuple[int, float, int]] = []  # (index, cost, payload_bytes)
    futures = []
    to_fetch: list[tuple[int, "TileEntry"]] = []

    for position, (entry, part) in enumerate(items):
        if cache is not None and not entry.virtual:
            array = cache.get(entry.blob_id)
            if array is not None:
                peak.acquire(array.nbytes)
                try:
                    summary = _reduce_tile(
                        array, entry, part, predicate, default_cell
                    )
                finally:
                    peak.release(array.nbytes)
                fetched[position] = TilePartial(
                    entry,
                    part,
                    cost=0.0,
                    payload_bytes=database.store.record(
                        entry.blob_id
                    ).byte_size,
                    partial=summary,
                    decoded_hit=True,
                )
                continue
        to_fetch.append((position, entry))

    def dispatch(
        position: int, entry: "TileEntry", payload: bytes, cost: float
    ) -> None:
        part = items[position][1]
        if entry.virtual:
            fetched[position] = TilePartial(
                entry, part, cost, len(payload), partial=None,
                decoded_hit=False,
            )
            return
        if executor is None:
            array = _decode(payload, entry.codec, dtype, entry.domain.shape)
            peak.acquire(array.nbytes)
            try:
                summary = _reduce_tile(
                    array, entry, part, predicate, default_cell
                )
            finally:
                peak.release(array.nbytes)
            fetched[position] = TilePartial(
                entry, part, cost, len(payload), summary, decoded_hit=False
            )
        else:
            pending.append((position, cost, len(payload)))
            futures.append(
                executor.submit(
                    _partial_task,
                    payload,
                    entry,
                    part,
                    dtype,
                    predicate,
                    default_cell,
                    peak,
                    parent=trace_ctx,
                )
            )

    for run in _coalesce_runs(database, to_fetch):
        _READ_RUN_LEN.observe(len(run))
        if len(run) == 1:
            position, entry = run[0]
            payload, cost = database.read_blob(entry.blob_id)
            dispatch(position, entry, payload, cost)
        else:
            _READ_RUNS.inc()
            _READ_BLOBS.inc(len(run))
            results = database.disk.read_blob_run(
                [entry.blob_id for _, entry in run]
            )
            for (position, entry), (payload, cost) in zip(run, results):
                dispatch(position, entry, payload, cost)

    if futures:
        _PARALLEL_BATCHES.inc()
        for (position, cost, payload_bytes), future in zip(pending, futures):
            entry, part = items[position]
            fetched[position] = TilePartial(
                entry,
                part,
                cost,
                payload_bytes,
                future.result(),
                decoded_hit=False,
            )
    return fetched, peak.peak  # type: ignore[return-value]


def fetch_tile(database: "Database", entry: "TileEntry", dtype) -> FetchedTile:
    """Serial single-tile fetch for the streaming / update paths.

    Consults (and immediately feeds) the decoded cache; never uses the
    worker pool — one tile has nothing to overlap.
    """
    cache = database.decoded_cache
    if cache is not None and not entry.virtual:
        array = cache.get(entry.blob_id)
        if array is not None:
            return FetchedTile(
                entry,
                cost=0.0,
                payload_bytes=database.store.record(entry.blob_id).byte_size,
                array=array,
                decoded_hit=True,
            )
    payload, cost = database.read_blob(entry.blob_id)
    if entry.virtual:
        return FetchedTile(entry, cost, len(payload), None, decoded_hit=False)
    array = _decode(payload, entry.codec, dtype, entry.domain.shape)
    if cache is not None:
        array = cache.put(entry.blob_id, array)
    return FetchedTile(entry, cost, len(payload), array, decoded_hit=False)
