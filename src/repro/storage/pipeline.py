"""Parallel read pipeline: overlap fetch and decode across a query's tiles.

The hot path of a range read is, per intersected tile: BLOB retrieval
(buffer pool, then simulated disk), ``decompress``, ``np.frombuffer``.
This module turns that per-tile chain into a small pipeline:

* the **coordinator** (calling thread) walks the tiles in page order and
  does everything whose *order matters* — decoded-cache lookups, buffer
  pool lookups/admissions, and the simulated disk charges, whose
  seek/settle/sequential regimes depend on head position.  Costs are
  therefore charged page-ordered and are bit-identical whether the
  pipeline runs serial or parallel;
* **workers** (an optional :class:`~concurrent.futures.ThreadPoolExecutor`
  owned by the :class:`~repro.storage.tilestore.Database`) run the
  order-free CPU work — ``decompress`` + ``frombuffer`` — concurrently.
  ``zlib`` releases the GIL, so compressed tiles genuinely overlap;
* **decoded-cache admissions** happen after the whole batch, in page
  order, in *both* modes, so the LRU evolves identically and a tiny cache
  cannot make serial and parallel disagree on later hits.

With ``io_workers=1`` (the default) no executor exists and the pipeline
degrades to the straight-line serial loop, keeping historical timings
reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro import obs
from repro.storage.compression import decompress

if TYPE_CHECKING:  # pragma: no cover - annotations only (avoids a cycle)
    from repro.storage.tilestore import Database, TileEntry

_WORKERS_BUSY = obs.gauge(
    "pipeline.workers_busy", "Decode tasks currently running on workers"
)
_PARALLEL_BATCHES = obs.counter(
    "pipeline.parallel_batches", "Tile batches fetched through the worker pool"
)
_TILES_DECODED = obs.counter(
    "pipeline.tiles_decoded", "Tiles decompressed + reshaped (any mode)"
)
_DECODE_MS = obs.histogram(
    "pipeline.decode_ms", "Wall milliseconds per tile decode task"
)


@dataclass
class FetchedTile:
    """One tile's outcome: charged cost, accounting sizes, decoded cells.

    ``array`` is the decoded, read-only-when-cached tile array; ``None``
    for virtual tiles (their cells are synthesised defaults).  ``cost`` is
    the modelled disk milliseconds charged for this tile (0.0 on a buffer
    pool or decoded-cache hit).  ``payload_bytes`` is the stored payload
    size, counted whether or not the payload was actually materialised.
    """

    entry: "TileEntry"
    cost: float
    payload_bytes: int
    array: Optional[np.ndarray]
    decoded_hit: bool


def _decode(payload: bytes, codec: str, dtype, shape) -> np.ndarray:
    """The order-free CPU half: decompress and shape one tile's cells."""
    started = time.perf_counter()
    raw = decompress(payload, codec)
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    _DECODE_MS.observe((time.perf_counter() - started) * 1000.0)
    _TILES_DECODED.inc()
    return array


def _decode_task(payload: bytes, codec: str, dtype, shape) -> np.ndarray:
    """Worker wrapper around :func:`_decode` tracking pool occupancy."""
    _WORKERS_BUSY.inc()
    try:
        return _decode(payload, codec, dtype, shape)
    finally:
        _WORKERS_BUSY.dec()


def fetch_tiles(
    database: "Database",
    entries: Sequence["TileEntry"],
    dtype,
) -> list[FetchedTile]:
    """Fetch and decode a page-ordered batch of tiles.

    Returns one :class:`FetchedTile` per entry, in the given order.  Disk
    and pool interactions happen on the calling thread in entry order;
    only decoding is (optionally) offloaded.  The result — arrays, costs
    and cache counters — is identical for any ``io_workers`` setting.
    """
    cache = database.decoded_cache
    executor = database.pipeline_executor() if len(entries) > 1 else None
    fetched: list[Optional[FetchedTile]] = [None] * len(entries)
    pending: list[tuple[int, float, int]] = []  # (index, cost, payload_bytes)
    futures = []

    for position, entry in enumerate(entries):
        if cache is not None and not entry.virtual:
            array = cache.get(entry.blob_id)
            if array is not None:
                fetched[position] = FetchedTile(
                    entry,
                    cost=0.0,
                    payload_bytes=database.store.record(entry.blob_id).byte_size,
                    array=array,
                    decoded_hit=True,
                )
                continue
        payload, cost = database.read_blob(entry.blob_id)
        if entry.virtual:
            fetched[position] = FetchedTile(
                entry, cost, len(payload), array=None, decoded_hit=False
            )
            continue
        shape = entry.domain.shape
        if executor is None:
            array = _decode(payload, entry.codec, dtype, shape)
            fetched[position] = FetchedTile(
                entry, cost, len(payload), array, decoded_hit=False
            )
        else:
            pending.append((position, cost, len(payload)))
            futures.append(
                executor.submit(_decode_task, payload, entry.codec, dtype, shape)
            )

    if futures:
        _PARALLEL_BATCHES.inc()
        for (position, cost, payload_bytes), future in zip(pending, futures):
            fetched[position] = FetchedTile(
                entries[position],
                cost,
                payload_bytes,
                future.result(),
                decoded_hit=False,
            )

    # Deferred admissions, page-ordered in every mode: admitting only after
    # the batch's lookups keeps the LRU trajectory independent of worker
    # completion order (and of the serial/parallel choice).
    if cache is not None:
        for tile in fetched:
            assert tile is not None
            if tile.array is not None and not tile.decoded_hit:
                tile.array = cache.put(tile.entry.blob_id, tile.array)
    return fetched  # type: ignore[return-value]


def fetch_tile(database: "Database", entry: "TileEntry", dtype) -> FetchedTile:
    """Serial single-tile fetch for the streaming / update paths.

    Consults (and immediately feeds) the decoded cache; never uses the
    worker pool — one tile has nothing to overlap.
    """
    cache = database.decoded_cache
    if cache is not None and not entry.virtual:
        array = cache.get(entry.blob_id)
        if array is not None:
            return FetchedTile(
                entry,
                cost=0.0,
                payload_bytes=database.store.record(entry.blob_id).byte_size,
                array=array,
                decoded_hit=True,
            )
    payload, cost = database.read_blob(entry.blob_id)
    if entry.virtual:
        return FetchedTile(entry, cost, len(payload), None, decoded_hit=False)
    array = _decode(payload, entry.codec, dtype, entry.domain.shape)
    if cache is not None:
        array = cache.put(entry.blob_id, array)
    return FetchedTile(entry, cost, len(payload), array, decoded_hit=False)
