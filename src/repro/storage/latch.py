"""Ordered latches: deadlock-free locking for the concurrent storage stack.

Every shared mutable structure in the storage layer (writer state, WAL
buffer, epoch table, buffer pool, simulated disk, BLOB store, decoded
cache) is protected by an :class:`OrderedLatch` carrying a **rank**.  A
thread may only acquire a latch whose rank is strictly greater than the
highest rank it already holds, which makes the latch graph acyclic and
deadlock impossible by construction.  The order is *asserted at runtime*
— a violating acquisition raises :class:`~repro.core.errors.StorageError`
immediately instead of deadlocking some unlucky future schedule.

The documented total order (DESIGN §11):

=====  ==================  ================================================
rank   latch               protects
=====  ==================  ================================================
10     ``txn.writer``      the single-writer mutation phase of a Database
20     ``wal.append``      the WAL record buffer and log-file appends
25     ``wal.sync``        the group-commit door (leader election state)
30     ``mvcc.epoch``      version publication, epoch pins, limbo list
45     ``pool``            buffer-pool LRU table and byte accounting
50     ``disk``            simulated-disk head position and counters
60     ``store``           BLOB catalog, allocator, pending queue, backend
70     ``cache.decoded``   decoded-tile LRU table and byte accounting
=====  ==================  ================================================

The one *call-graph* subtlety the ranks encode: ``SimulatedDisk.read_blob``
(rank 50) calls into ``BlobStore.get`` (rank 60), and ``BufferPool.read_blob``
(rank 45) calls into the disk — so pool < disk < store, even though the
store feels "lower level" than the disk model that charges for it.

Deterministic scheduling hook
-----------------------------

The concurrency test harness (``tests/concurrency``) needs to *drive*
interleavings rather than sample them.  :func:`set_schedule_hook`
installs a callback invoked at every latch acquisition (and at a few
hand-placed :func:`schedule_point` sites); the harness parks the calling
thread there until a seeded scheduler grants it the next step.  With the
hook installed, latch acquisition spins through ``acquire(blocking=False)``
and yields to the scheduler between attempts, so a thread blocked on a
latch never stalls the virtual schedule.  Without a hook (production),
the fast path is one ``None`` check.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro import obs
from repro.core.errors import StorageError

__all__ = [
    "LATCH_RANKS",
    "OrderedLatch",
    "clear_schedule_hook",
    "held_ranks",
    "schedule_point",
    "set_schedule_hook",
]

#: The documented total latch order (name -> rank), for reference and
#: for DESIGN §11.  Constructing an OrderedLatch with a name in this
#: table and a *different* rank is an error — the doc must never drift
#: from the code.
LATCH_RANKS: dict[str, int] = {
    "txn.writer": 10,
    "wal.append": 20,
    "wal.sync": 25,
    "mvcc.epoch": 30,
    "pool": 45,
    "disk": 50,
    "store": 60,
    "cache.decoded": 70,
}

_ACQUIRES = obs.counter("latch.acquires", "Ordered-latch acquisitions")
_WAITS = obs.counter("latch.waits", "Latch acquisitions that had to wait")
_WAIT_MS = obs.histogram(
    "latch.wait_ms", "Milliseconds spent waiting for contended latches"
)
_HOLD_MS = obs.histogram(
    "latch.hold_ms",
    "Milliseconds latches were held (all latches)",
    buckets=obs.FINE_BUCKETS,
)

_schedule_hook: Optional[Callable[[str], None]] = None


def set_schedule_hook(hook: Callable[[str], None]) -> None:
    """Install the deterministic-scheduler callback (test harness only)."""
    global _schedule_hook
    _schedule_hook = hook


def clear_schedule_hook() -> None:
    """Remove the scheduler callback (restores production behaviour)."""
    global _schedule_hook
    _schedule_hook = None


def schedule_point(label: str) -> bool:
    """Yield to the virtual scheduler, if one is installed.

    Returns True when a hook ran (harness mode), False otherwise, so
    spin-wait loops can fall back to a real ``time.sleep`` in
    production::

        if not schedule_point("wal.sync.wait"):
            time.sleep(0.0002)
    """
    hook = _schedule_hook
    if hook is not None:
        hook(label)
        return True
    return False


class _HeldStack(threading.local):
    """Per-thread stack of currently held latches (innermost last)."""

    def __init__(self) -> None:
        self.stack: list["OrderedLatch"] = []


_held = _HeldStack()


def held_ranks() -> tuple[int, ...]:
    """Ranks currently held by the calling thread (diagnostics/tests)."""
    return tuple(latch.rank for latch in _held.stack)


class OrderedLatch:
    """A named lock with a rank, asserting the global acquisition order.

    ``reentrant=True`` backs the latch with an RLock and permits
    re-acquisition by the holder (used where internal helpers are also
    public entry points, e.g. ``BlobStore.get`` -> ``record``).  Rank
    checking is skipped only for such re-acquisitions.
    """

    __slots__ = (
        "name",
        "rank",
        "reentrant",
        "_lock",
        "_waits",
        "_wait_ms",
        "_hold_ms",
        "_hold_local",
    )

    def __init__(self, name: str, rank: int, reentrant: bool = False) -> None:
        expected = LATCH_RANKS.get(name)
        if expected is not None and expected != rank:
            raise StorageError(
                f"latch {name!r} must have rank {expected}, got {rank}"
            )
        self.name = name
        self.rank = rank
        self.reentrant = reentrant
        self._lock: threading.RLock | threading.Lock = (
            threading.RLock() if reentrant else threading.Lock()
        )
        self._waits = obs.counter(
            f"latch.{name}.waits", f"Contended acquisitions of latch {name!r}"
        )
        self._wait_ms = obs.histogram(
            f"latch.{name}.wait_ms",
            f"Wait time for contended acquisitions of latch {name!r} (ms)",
            buckets=obs.FINE_BUCKETS,
        )
        self._hold_ms = obs.histogram(
            f"latch.{name}.hold_ms",
            f"Time latch {name!r} was held, acquire to release (ms)",
            buckets=obs.FINE_BUCKETS,
        )
        self._hold_local = threading.local()

    def _note_acquired(self) -> None:
        """Start the hold clock (None placeholder keeps the per-thread
        stack balanced when obs is toggled between acquire and release)."""
        holds = getattr(self._hold_local, "stack", None)
        if holds is None:
            holds = []
            self._hold_local.stack = holds
        holds.append(time.perf_counter() if obs.registry.enabled else None)

    def acquire(self) -> None:
        stack = _held.stack
        if self.reentrant and any(latch is self for latch in stack):
            self._lock.acquire()  # re-entry: order already established
            stack.append(self)
            self._note_acquired()
            return
        if stack and stack[-1].rank >= self.rank:
            raise StorageError(
                f"latch order violation: acquiring {self.name!r} "
                f"(rank {self.rank}) while holding {stack[-1].name!r} "
                f"(rank {stack[-1].rank}); the total order is {LATCH_RANKS}"
            )
        hook = _schedule_hook
        if hook is not None:
            # Harness mode: never block the OS thread while the virtual
            # scheduler thinks it is runnable — spin through non-blocking
            # attempts, yielding the schedule between them.  Wall time is
            # meaningless under the virtual schedule, so only the wait
            # *counters* move here, not the wait histograms.
            hook(f"latch:{self.name}")
            if not self._lock.acquire(blocking=False):
                _WAITS.inc()
                self._waits.inc()
                while not self._lock.acquire(blocking=False):
                    hook(f"latch:{self.name}:blocked")
        elif not self._lock.acquire(blocking=False):
            _WAITS.inc()
            self._waits.inc()
            started = time.perf_counter()
            self._lock.acquire()
            waited_ms = (time.perf_counter() - started) * 1000.0
            _WAIT_MS.observe(waited_ms)
            self._wait_ms.observe(waited_ms)
        _ACQUIRES.inc()
        stack.append(self)
        self._note_acquired()

    def release(self) -> None:
        stack = _held.stack
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is self:
                del stack[position]
                break
        else:  # pragma: no cover - defensive
            raise StorageError(
                f"latch {self.name!r} released by a thread not holding it"
            )
        holds = getattr(self._hold_local, "stack", None)
        if holds:
            started = holds.pop()
            if started is not None:
                held_ms = (time.perf_counter() - started) * 1000.0
                _HOLD_MS.observe(held_ms)
                self._hold_ms.observe(held_ms)
        self._lock.release()

    def held(self) -> bool:
        """Whether the *calling thread* currently holds this latch."""
        return any(latch is self for latch in _held.stack)

    def __enter__(self) -> "OrderedLatch":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedLatch({self.name!r}, rank={self.rank})"
