"""MVCC-lite: published object versions, epoch pins, deferred reclamation.

The concurrency model (DESIGN §11) in one paragraph: every
:class:`~repro.storage.tilestore.StoredMDD` keeps *working* state that
only the single writer (the thread inside :meth:`Database.transaction`)
may touch, plus a **published** :class:`ObjectVersion` — an immutable
``(tiles, index, domain)`` triple that readers use without any locking.
A transaction clones the working containers copy-on-write on first
mutation, and at commit publishes new versions for every dirtied object
atomically under the epoch latch.  Readers therefore always see either
the entire transaction or none of it — never a partially committed
batch.

Superseded BLOBs cannot be deleted at commit: a reader that pinned an
older version may still fetch them.  :class:`EpochManager` implements
epoch-based reclamation: each commit advances a global epoch; a retired
blob enters a *limbo* list tagged with the pre-advance epoch; a reader
pins the current epoch for the duration of its read (or snapshot).  A
limbo entry whose tag is **strictly below every active pin** can no
longer be reached by any reader and is physically deleted.  With no
readers active, reclamation is immediate — single-threaded behaviour
degenerates to "delete at commit".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple

from repro import obs
from repro.core.errors import StorageError
from repro.core.geometry import MInterval
from repro.storage.latch import OrderedLatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np

    from repro.index.base import SpatialIndex
    from repro.index.zonemap import TileSynopsis
    from repro.query.timing import QueryTiming
    from repro.storage.tilestore import Database, StoredMDD, TileEntry

_EPOCH = obs.gauge("mvcc.epoch", "Current global epoch (advances per commit)")
_SNAPSHOTS_OPENED = obs.counter(
    "mvcc.snapshots_opened", "Epoch pins taken (snapshots and plain reads)"
)
_SNAPSHOTS_ACTIVE = obs.gauge(
    "mvcc.snapshots_active", "Epoch pins currently held"
)
_SNAPSHOT_AGE = obs.gauge(
    "mvcc.snapshot_age",
    "Commits elapsed since the oldest active pin (0 when none)",
)
_LIMBO_BLOBS = obs.gauge(
    "mvcc.limbo_blobs", "Retired blobs awaiting epoch reclamation"
)
_RECLAIMED_BLOBS = obs.counter(
    "mvcc.reclaimed_blobs", "Superseded blobs physically deleted"
)
_RECLAIMED_BYTES = obs.counter(
    "mvcc.reclaimed_bytes", "Stored bytes freed by epoch reclamation"
)
_LIVE_VERSIONS = obs.gauge(
    "mvcc.live_versions",
    "Published object versions currently live (one per stored object)",
)
_PIN_FLOOR = obs.gauge(
    "mvcc.pin_floor",
    "Oldest pinned epoch — the reclamation watermark "
    "(equals the current epoch when nothing is pinned)",
)


def note_live_versions(count: int) -> None:
    """Record how many published versions are live (called by the
    Database whenever publication or object creation/drop changes it)."""
    _LIVE_VERSIONS.set(count)


@dataclass(frozen=True)
class ObjectVersion:
    """An immutable point-in-time view of one stored object.

    ``tiles`` and ``index`` are immutable **by convention**: they are
    never mutated after publication (the writer clones before mutating),
    so readers share them without copies or locks.
    """

    tiles: Mapping[int, "TileEntry"]
    index: "SpatialIndex"
    domain: Optional[MInterval]
    epoch: int
    #: Per-tile value synopses, published atomically with ``tiles`` — a
    #: reader can never pair a tile with a synopsis from another epoch.
    zones: Mapping[int, "TileSynopsis"] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.zones is None:
            object.__setattr__(self, "zones", {})


class EpochManager:
    """Global epoch counter, active pins, and the limbo list.

    All state is guarded by the ``mvcc.epoch`` latch, which is also the
    publication latch: committing writers publish their new
    :class:`ObjectVersion`\\ s while holding it, and readers pin under
    it, so a pin observes either all of a commit's versions or none.
    """

    def __init__(self, reclaimer: Callable[[int], int]) -> None:
        #: ``reclaimer(blob_id) -> bytes freed`` physically deletes one
        #: superseded blob (cache invalidation + store delete).
        self._reclaimer = reclaimer
        self.latch = OrderedLatch("mvcc.epoch", 30)
        self._current = 0
        self._pins: Dict[int, int] = {}  # epoch -> active pin count
        self._limbo: list[Tuple[int, int]] = []  # (tagged epoch, blob id)

    # -- introspection ----------------------------------------------------

    @property
    def current(self) -> int:
        with self.latch:
            return self._current

    @property
    def limbo_size(self) -> int:
        with self.latch:
            return len(self._limbo)

    @property
    def active_pins(self) -> int:
        with self.latch:
            return sum(self._pins.values())

    # -- pins (reader side) ----------------------------------------------

    def pin(self) -> int:
        """Pin the current epoch; versions captured after this call stay
        fetchable until :meth:`unpin`."""
        with self.latch:
            return self.pin_locked()

    def pin_locked(self) -> int:
        """Like :meth:`pin`, for callers already holding :attr:`latch`
        (pin-and-capture must be one critical section)."""
        epoch = self._current
        self._pins[epoch] = self._pins.get(epoch, 0) + 1
        _SNAPSHOTS_OPENED.inc()
        _SNAPSHOTS_ACTIVE.inc()
        self._update_age()
        return epoch

    def unpin(self, epoch: int) -> None:
        """Release a pin; reclaims whatever the pin was protecting."""
        with self.latch:
            count = self._pins.get(epoch)
            if not count:
                raise StorageError(f"unpin of epoch {epoch} with no pin")
            if count == 1:
                del self._pins[epoch]
            else:
                self._pins[epoch] = count - 1
            _SNAPSHOTS_ACTIVE.dec()
            self._reclaim_locked()
            self._update_age()

    # -- commit side (caller holds the latch via ``publication``) ---------

    def retire_and_advance(self, blob_ids) -> None:
        """Tag retired blobs with the committing epoch, advance, reclaim.

        Must be called while holding :attr:`latch` (the commit's
        publication critical section).
        """
        tag = self._current
        for blob_id in blob_ids:
            self._limbo.append((tag, blob_id))
        self._current = tag + 1
        _EPOCH.set(self._current)
        _LIMBO_BLOBS.set(len(self._limbo))
        self._reclaim_locked()
        self._update_age()

    # -- reclamation ------------------------------------------------------

    def _reclaim_locked(self) -> None:
        if not self._limbo:
            return
        floor = min(self._pins) if self._pins else self._current
        # An entry tagged g was reachable by readers pinned at or before
        # g; pins strictly above g (or no pins at all) cannot reach it.
        survivors: list[Tuple[int, int]] = []
        freed_blobs = 0
        freed_bytes = 0
        for tag, blob_id in self._limbo:
            if tag < floor or not self._pins:
                freed_bytes += self._reclaimer(blob_id)
                freed_blobs += 1
            else:
                survivors.append((tag, blob_id))
        self._limbo = survivors
        if freed_blobs:
            _RECLAIMED_BLOBS.inc(freed_blobs)
            _RECLAIMED_BYTES.inc(freed_bytes)
        _LIMBO_BLOBS.set(len(self._limbo))

    def _update_age(self) -> None:
        floor = min(self._pins) if self._pins else self._current
        _SNAPSHOT_AGE.set(self._current - floor)
        _PIN_FLOOR.set(floor)


class Snapshot:
    """A consistent, repeatable point-in-time view of a whole database.

    Captures the published version of every object under one epoch pin,
    so reads through the snapshot are mutually consistent *across
    objects* and stable for the snapshot's lifetime, no matter how many
    transactions commit meanwhile.  Use as a context manager::

        with database.snapshot() as snap:
            array, timing = snap.read("coll", "obj", region)
    """

    def __init__(self, database: "Database") -> None:
        self._database = database
        epoch = database.epoch
        with epoch.latch:
            # Pin and capture under one latch hold: no commit can publish
            # between the pin and the capture, so the snapshot is atomic.
            self._epoch = epoch.pin_locked()
            self._versions: Dict[Tuple[str, str], ObjectVersion] = {
                (coll_name, obj_name): obj._published
                for coll_name, objects in database.collections.items()
                for obj_name, obj in objects.items()
            }
        self._closed = False

    @property
    def epoch(self) -> int:
        return self._epoch

    def version(self, collection: str, name: str) -> ObjectVersion:
        """The captured version of one object (raises when unknown)."""
        try:
            return self._versions[(collection, name)]
        except KeyError:
            raise StorageError(
                f"snapshot holds no object {name!r} in collection "
                f"{collection!r}"
            ) from None

    def objects(self, collection: str) -> tuple[str, ...]:
        """Names captured for one collection."""
        return tuple(
            obj for coll, obj in sorted(self._versions) if coll == collection
        )

    def domain(self, collection: str, name: str) -> Optional[MInterval]:
        return self.version(collection, name).domain

    def read(
        self, collection: str, name: str, region: MInterval
    ) -> tuple["np.ndarray", "QueryTiming"]:
        """Range-read one object as of the snapshot."""
        if self._closed:
            raise StorageError("snapshot is closed")
        obj = self._database.collection(collection)[name]
        return obj.read(region, version=self.version(collection, name))

    def close(self) -> None:
        """Release the pin (idempotent); triggers reclamation."""
        if not self._closed:
            self._closed = True
            self._database.epoch.unpin(self._epoch)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot(epoch={self._epoch}, objects={len(self._versions)}, "
            f"closed={self._closed})"
        )
