"""Offline consistency checker for a database directory.

``fsck_database`` cross-checks the three durable artefacts of a database
directory — the page file, the BLOB sidecar, and the tile catalog — plus
the write-ahead log, without mutating any of them:

* every catalog parses and carries a supported version;
* BLOB page ranges stay below the high-water mark, never overlap each
  other, and never overlap the allocator's free list;
* every real payload is readable at its recorded size and passes its
  per-page CRC32C verification;
* every tile references an existing BLOB whose size matches the tile's
  domain (uncompressed tiles), tiles of one object never overlap, and
  the object's current domain contains all of them;
* the zone-map sidecar stays consistent with the catalog: every entry
  names a live tile, every audited tile of a zone-mapped object carries
  an entry, cell counts match the tile domain, and ranges are ordered;
  under ``deep=True`` every synopsis is recomputed from the decoded
  payload and compared field by field;
* a leftover write-ahead log is reported: committed-but-unreplayed
  transactions mean recovery has not run, a torn tail is informational.

The checker is deliberately read-only so it can run as the final judge
of the crash gauntlet: after a crash and a recovery pass, a database
must fsck clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.errors import ChecksumError, ReproError
from repro.core.geometry import MInterval
from repro.index.zonemap import (
    TileSynopsis,
    compute_synopsis,
    constant_synopsis,
)
from repro.storage.backends import FileBlobStore
from repro.storage.catalog import (
    CATALOG_NAME,
    CATALOG_VERSION,
    PAGES_NAME,
    WAL_NAME,
    ZONES_NAME,
    _deserialise_type,
)
from repro.storage.compression import decompress
from repro.storage.wal import scan_wal


@dataclass(frozen=True)
class FsckIssue:
    """One inconsistency: ``error`` breaks reads, ``warning`` does not."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class FsckReport:
    """Outcome of one check pass."""

    directory: Path = field(default_factory=Path)
    issues: list[FsckIssue] = field(default_factory=list)
    blobs_checked: int = 0
    payloads_verified: int = 0
    tiles_checked: int = 0
    objects_checked: int = 0
    zones_checked: int = 0

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    def error(self, code: str, message: str) -> None:
        self.issues.append(FsckIssue("error", code, message))

    def warning(self, code: str, message: str) -> None:
        self.issues.append(FsckIssue("warning", code, message))

    def summary(self) -> str:
        status = "clean" if self.ok else "INCONSISTENT"
        return (
            f"{self.directory}: {status} — {self.blobs_checked} blobs "
            f"({self.payloads_verified} payloads verified), "
            f"{self.objects_checked} objects, {self.tiles_checked} tiles, "
            f"{self.zones_checked} zone entries, {len(self.issues)} issue(s)"
        )


def _check_placement(report: FsckReport, store: FileBlobStore) -> None:
    """Page ranges: inside the file, disjoint, and disjoint from the
    free list."""
    high_water = store.total_pages
    claims: list[tuple[int, int, str]] = []  # (start, end, owner)
    for blob_id in store.blob_ids():
        record = store.record(blob_id)
        claims.append(
            (record.pages.start, record.pages.end, f"blob {blob_id}")
        )
        if record.pages.end > high_water:
            report.error(
                "page-beyond-high-water",
                f"blob {blob_id} occupies {record.pages}, high water is "
                f"{high_water}",
            )
    for hole in store._allocator.free_ranges():
        claims.append((hole.start, hole.end, f"free range {hole}"))
    claims.sort()
    for (s1, e1, o1), (s2, _e2, o2) in zip(claims, claims[1:]):
        if s2 < e1:
            report.error(
                "page-overlap", f"{o1} overlaps {o2} (pages {s2}..{e1 - 1})"
            )


def _check_payloads(report: FsckReport, store: FileBlobStore) -> None:
    page_file_size = store.path.stat().st_size
    for blob_id in store.blob_ids():
        record = store.record(blob_id)
        report.blobs_checked += 1
        if record.virtual:
            continue
        stored = record.stored_size or 0
        if stored > record.pages.count * store.page_size:
            report.error(
                "payload-overflow",
                f"blob {blob_id} stores {stored} bytes in {record.pages}",
            )
            continue
        end_byte = record.pages.start * store.page_size + stored
        if end_byte > page_file_size:
            report.error(
                "payload-truncated",
                f"blob {blob_id} ends at byte {end_byte}, page file has "
                f"{page_file_size}",
            )
            continue
        try:
            payload = store.get(blob_id)
        except ChecksumError as exc:
            report.error("payload-checksum", str(exc))
            continue
        except ReproError as exc:
            report.error("payload-unreadable", f"blob {blob_id}: {exc}")
            continue
        if len(payload) != stored:
            report.error(
                "payload-short",
                f"blob {blob_id} read {len(payload)} bytes, expected "
                f"{stored}",
            )
        else:
            report.payloads_verified += 1


def _check_objects(
    report: FsckReport, catalog: dict, store: FileBlobStore
) -> None:
    for coll_name, objects in catalog.get("collections", {}).items():
        for payload in objects:
            report.objects_checked += 1
            name = f"{coll_name}/{payload.get('name')}"
            try:
                mdd_type = _deserialise_type(payload["type"])
            except ReproError as exc:
                report.error("object-type", f"{name}: bad type: {exc}")
                continue
            domains: list[tuple[MInterval, int]] = []
            for tile in payload.get("tiles", []):
                report.tiles_checked += 1
                tile_id = tile.get("id", "?")
                domain = MInterval.parse(tile["domain"])
                blob_id = tile["blob"]
                if blob_id not in store:
                    report.error(
                        "tile-dangling-blob",
                        f"{name} tile {tile_id} references missing blob "
                        f"{blob_id}",
                    )
                    continue
                record = store.record(blob_id)
                expected = domain.cell_count * mdd_type.cell_size
                if tile["codec"] == "none" and record.byte_size != expected:
                    report.error(
                        "tile-size-mismatch",
                        f"{name} tile {tile_id} domain {domain} needs "
                        f"{expected} bytes, blob {blob_id} holds "
                        f"{record.byte_size}",
                    )
                for other, other_id in domains:
                    if domain.intersection(other) is not None:
                        report.error(
                            "tile-overlap",
                            f"{name} tiles {other_id} and {tile_id} overlap "
                            f"({other} vs {domain})",
                        )
                domains.append((domain, tile_id))
            declared = payload.get("domain")
            if declared is not None and domains:
                hull = MInterval.hull_of(d for d, _ in domains)
                if not MInterval.parse(declared).contains(hull):
                    report.error(
                        "domain-too-small",
                        f"{name} declares domain {declared}, tiles hull to "
                        f"{hull}",
                    )


def _check_zones(
    report: FsckReport,
    catalog: dict,
    store: FileBlobStore,
    zones_path: Path,
    deep: bool,
) -> None:
    """Audit the zone-map sidecar against the catalog (DESIGN §13).

    A checkpoint that predates zone maps (no ``zones.json``) is only a
    warning; with the sidecar present, every audited tile of an object
    that carries *any* synopses must have one (an object with none is a
    zone-maps-disabled load, not an inconsistency), and every entry must
    name a live tile with a matching cell count and an ordered range.
    ``deep`` decodes each payload and recomputes the synopsis.
    """
    has_tiles = any(
        payload.get("tiles")
        for objects in catalog.get("collections", {}).values()
        for payload in objects
    )
    if not zones_path.exists():
        if has_tiles:
            report.warning(
                "zone-sidecar-absent",
                f"no {ZONES_NAME} beside the catalog; zone-map pruning "
                f"starts cold until the next checkpoint",
            )
        return
    try:
        sidecar = json.loads(zones_path.read_text())
    except json.JSONDecodeError as exc:
        report.error("zone-sidecar-corrupt", f"{zones_path}: {exc}")
        return
    zone_colls = sidecar.get("collections", {})
    for coll_name, objects in catalog.get("collections", {}).items():
        for payload in objects:
            name = f"{coll_name}/{payload.get('name')}"
            try:
                mdd_type = _deserialise_type(payload["type"])
            except ReproError:
                continue  # already reported by _check_objects
            base = mdd_type.base
            if base.dtype.fields is not None or base.dtype.kind not in "biuf":
                continue  # struct/non-numeric cells carry no synopses
            entries = dict(
                zone_colls.get(coll_name, {}).get(payload.get("name"), {})
            )
            tiles = payload.get("tiles", [])
            if not entries:
                continue  # zone maps disabled for this object
            for tile in tiles:
                tile_id = tile.get("id")
                raw_entry = entries.pop(str(tile_id), None)
                if raw_entry is None:
                    report.error(
                        "zone-missing",
                        f"{name} tile {tile_id} has no zone-map entry",
                    )
                    continue
                report.zones_checked += 1
                syn = TileSynopsis.from_dict(raw_entry)
                domain = MInterval.parse(tile["domain"])
                if syn.cell_count != domain.cell_count:
                    report.error(
                        "zone-count-mismatch",
                        f"{name} tile {tile_id} synopsis counts "
                        f"{syn.cell_count} cells, domain {domain} holds "
                        f"{domain.cell_count}",
                    )
                    continue
                if (
                    syn.vmin is not None
                    and syn.vmax is not None
                    and syn.vmin > syn.vmax
                ):
                    report.error(
                        "zone-range-invalid",
                        f"{name} tile {tile_id} synopsis range "
                        f"[{syn.vmin}, {syn.vmax}] is inverted",
                    )
                    continue
                if not deep:
                    continue
                blob_id = tile["blob"]
                if blob_id not in store:
                    continue  # already reported by _check_objects
                record = store.record(blob_id)
                if record.virtual:
                    expected = constant_synopsis(
                        domain.cell_count, base.default
                    )
                else:
                    try:
                        raw = decompress(store.get(blob_id), tile["codec"])
                    except ReproError:
                        continue  # payload issues reported elsewhere
                    cells = np.frombuffer(raw, dtype=base.dtype)
                    expected = compute_synopsis(
                        cells, syn.nbins if syn.nbins >= 2 else 0
                    )
                if expected is not None and not syn.same_as(expected):
                    report.error(
                        "zone-stale",
                        f"{name} tile {tile_id} synopsis "
                        f"{raw_entry} does not match the decoded payload "
                        f"{expected.to_dict()}",
                    )
            for orphan_id in entries:
                report.error(
                    "zone-orphan",
                    f"{name} zone-map entry for tile {orphan_id} names no "
                    f"live tile",
                )
    for coll_name, objects in zone_colls.items():
        known = {
            payload.get("name")
            for payload in catalog.get("collections", {}).get(coll_name, [])
        }
        for obj_name in objects:
            if obj_name not in known:
                report.error(
                    "zone-orphan",
                    f"zone-map sidecar names unknown object "
                    f"{coll_name}/{obj_name}",
                )


def _check_wal(report: FsckReport, wal_path: Path) -> None:
    if not wal_path.exists():
        return
    try:
        scan = scan_wal(wal_path)
    except ReproError as exc:
        report.error("wal-unreadable", f"{wal_path}: {exc}")
        return
    if scan.batches:
        report.error(
            "wal-unreplayed",
            f"{wal_path} holds {len(scan.batches)} committed transaction(s) "
            f"not reflected in the checkpoint; run `repro recover`",
        )
    if scan.torn_bytes or scan.uncommitted_records:
        report.warning(
            "wal-torn-tail",
            f"{wal_path} ends with {scan.uncommitted_records} uncommitted "
            f"record(s) and {scan.torn_bytes} torn byte(s); recovery will "
            f"discard them",
        )


def fsck_database(
    directory: Union[str, Path], deep: bool = False
) -> FsckReport:
    """Check a database directory; never mutates it.

    ``deep`` additionally recomputes every zone-map synopsis from its
    decoded payload (reads every blob twice — use on small databases or
    when staleness is suspected).
    """
    directory = Path(directory)
    report = FsckReport(directory=directory)
    catalog_path = directory / CATALOG_NAME
    if not catalog_path.exists():
        report.error("missing-catalog", f"no {CATALOG_NAME} in {directory}")
        return report
    try:
        catalog = json.loads(catalog_path.read_text())
    except json.JSONDecodeError as exc:
        report.error("catalog-corrupt", f"{catalog_path}: {exc}")
        return report
    if catalog.get("version") != CATALOG_VERSION:
        report.error(
            "catalog-version",
            f"unsupported catalog version {catalog.get('version')!r}",
        )
        return report
    pages_path = directory / PAGES_NAME
    try:
        store = FileBlobStore.open(pages_path)
    except ReproError as exc:
        report.error("sidecar-corrupt", f"{pages_path}: {exc}")
        return report
    try:
        _check_placement(report, store)
        _check_payloads(report, store)
        _check_objects(report, catalog, store)
        _check_zones(report, catalog, store, directory / ZONES_NAME, deep)
    finally:
        # close() would sync (a write); release the handle only.
        store._file.close()
    _check_wal(report, directory / WAL_NAME)
    return report
