"""LRU buffer pool over the simulated disk.

A byte-budgeted cache of BLOB payloads.  A hit returns the payload without
charging disk time; a miss reads through :class:`SimulatedDisk` and admits
the payload, evicting least-recently-used entries until the budget holds.

Benchmarks run cold by default (the paper's ``t_o`` is dominated by actual
retrieval), but the ablation benches use the pool to show how caching
changes the regular-vs-arbitrary comparison.

The pool keeps local ``hits`` / ``misses`` / ``evictions`` counters (read
into :class:`~repro.query.timing.QueryTiming` per query) and mirrors them
into the process-wide :mod:`repro.obs` registry.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.core.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.latch import OrderedLatch

_HITS = obs.counter("pool.hits", "Buffer-pool hits (no disk charge)")
_MISSES = obs.counter("pool.misses", "Buffer-pool misses (read through disk)")
_EVICTIONS = obs.counter("pool.evictions", "LRU evictions from the pool")
_BYTES_ADMITTED = obs.counter("pool.bytes_admitted", "Payload bytes admitted")
_BYTES_EVICTED = obs.counter("pool.bytes_evicted", "Payload bytes evicted")
# Delta-maintained on every mutation (admit / evict / invalidate / clear)
# so several pools — one per Database — sum into one truthful total
# instead of the last-mutated pool overwriting the others via set().
_USED_BYTES = obs.gauge(
    "pool.used_bytes", "Bytes currently cached (summed over all pools)"
)
_ADMITTED_SIZE = obs.histogram(
    "pool.admitted_size_bytes",
    "Payload size per pool admission",
    buckets=obs.BYTE_BUCKETS,
)


class BufferPool:
    """Byte-budgeted LRU cache of BLOB payloads."""

    def __init__(self, disk: SimulatedDisk, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise StorageError(f"negative capacity {capacity_bytes}")
        self.disk = disk
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Guards the LRU table, the local tallies, and the used-byte
        # accounting (both self._used and its delta into the gauge), so
        # concurrent admit/evict keeps gauge sums exact (DESIGN §11).
        self._latch = OrderedLatch("pool", 45)

    @property
    def used_bytes(self) -> int:
        return self._used

    def read_blob(self, blob_id: int) -> tuple[bytes, float]:
        """BLOB payload and charged disk milliseconds (0.0 on a hit)."""
        with self._latch:
            cached = self._entries.get(blob_id)
            if cached is not None:
                self._entries.move_to_end(blob_id)
                self.hits += 1
                _HITS.inc()
                return cached, 0.0
            # The latch is held across the miss read: the disk latch
            # ranks above the pool latch, and a serialized miss+admit is
            # what keeps the LRU trajectory and the charges deterministic.
            payload, cost = self.disk.read_blob(blob_id)
            self.misses += 1
            _MISSES.inc()
            self._admit(blob_id, payload)
            return payload, cost

    def _admit(self, blob_id: int, payload: bytes) -> None:
        if len(payload) > self.capacity_bytes:
            return
        while self._used + len(payload) > self.capacity_bytes and self._entries:
            _victim, evicted = self._entries.popitem(last=False)
            self._used -= len(evicted)
            _USED_BYTES.dec(len(evicted))
            self.evictions += 1
            _EVICTIONS.inc()
            _BYTES_EVICTED.inc(len(evicted))
        self._entries[blob_id] = payload
        self._used += len(payload)
        _BYTES_ADMITTED.inc(len(payload))
        _ADMITTED_SIZE.observe(len(payload))
        _USED_BYTES.inc(len(payload))

    def invalidate(self, blob_id: int) -> None:
        """Drop one entry (called on BLOB update/delete)."""
        with self._latch:
            payload = self._entries.pop(blob_id, None)
            if payload is not None:
                self._used -= len(payload)
                _USED_BYTES.dec(len(payload))

    def clear(self) -> None:
        """Empty the pool (cold-start benchmarks)."""
        with self._latch:
            self._entries.clear()
            _USED_BYTES.dec(self._used)
            self._used = 0

    def reset_stats(self) -> None:
        """Zero the local hit/miss/eviction tallies (measurement boundary).

        Contents are untouched — clearing data and clearing counters are
        different decisions; ``Database.reset_clock`` does both."""
        with self._latch:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
