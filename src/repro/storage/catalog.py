"""Whole-database persistence: save and reopen a Database directory.

The paper's system keeps its tile catalog inside the O2 base DBMS; here a
database directory plays that role:

    <dir>/blobs.pages               page file with every BLOB
    <dir>/blobs.pages.catalog.json  BLOB placement (FileBlobStore sidecar)
    <dir>/catalog.json              collections, objects, types, tile tables

``save_database`` works from any store: with a :class:`FileBlobStore` the
payloads are already on disk and only catalogs are written; with a
:class:`MemoryBlobStore` every payload is copied into a fresh page file
(BLOB ids are preserved so tile tables stay valid).

``open_database`` rebuilds objects by re-attaching BLOBs — no cell data
is copied — and repopulates each object's spatial index.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Optional, Union

from repro.core.cells import base_type
from repro.core.errors import StorageError
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.storage.backends import FileBlobStore, MemoryBlobStore
from repro.storage.disk import CpuParameters, DiskParameters
from repro.storage.tilestore import Database, StoredMDD

CATALOG_NAME = "catalog.json"
PAGES_NAME = "blobs.pages"
CATALOG_VERSION = 1


def _serialise_type(mdd_type: MDDType) -> dict:
    return {
        "name": mdd_type.name,
        "base": mdd_type.base.name,
        "definition_domain": str(mdd_type.definition_domain),
    }


def _deserialise_type(payload: dict) -> MDDType:
    return MDDType(
        payload["name"],
        base_type(payload["base"]),
        MInterval.parse(payload["definition_domain"]),
    )


def _serialise_object(obj: StoredMDD) -> dict:
    return {
        "name": obj.name,
        "type": _serialise_type(obj.mdd_type),
        "tiles": [
            {
                "domain": str(entry.domain),
                "blob": entry.blob_id,
                "codec": entry.codec,
                "virtual": entry.virtual,
            }
            for entry in obj.tile_entries()
        ],
    }


def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Persist a database (BLOBs + catalogs) into ``directory``.

    Returns the directory path.  Existing catalogs in the directory are
    overwritten; an existing page file is only reused when the database
    is already backed by it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    pages_path = directory / PAGES_NAME

    store = database.store
    if isinstance(store, FileBlobStore):
        store.sync()
        if store.path.resolve() != pages_path.resolve():
            shutil.copy2(store.path, pages_path)
            shutil.copy2(
                store.catalog_path,
                pages_path.with_name(pages_path.name + FileBlobStore.CATALOG_SUFFIX),
            )
    elif isinstance(store, MemoryBlobStore):
        _copy_memory_store(store, pages_path)
    else:
        raise StorageError(
            f"cannot persist store of type {type(store).__name__}"
        )

    catalog = {
        "version": CATALOG_VERSION,
        "collections": {
            coll_name: [
                _serialise_object(obj) for obj in objects.values()
            ]
            for coll_name, objects in database.collections.items()
        },
    }
    tmp = directory / (CATALOG_NAME + ".tmp")
    tmp.write_text(json.dumps(catalog, indent=1))
    tmp.replace(directory / CATALOG_NAME)
    return directory


def _copy_memory_store(store: MemoryBlobStore, pages_path: Path) -> None:
    """Materialise an in-memory store as a page file, keeping BLOB ids
    and page placement identical."""
    if pages_path.exists():
        pages_path.unlink()
    with FileBlobStore(pages_path, page_size=store.page_size) as file_store:
        for blob_id in sorted(store.blob_ids()):
            record = store.record(blob_id)
            if record.virtual:
                copied = file_store.put_virtual(record.byte_size)
            else:
                copied = file_store.put(store.get(blob_id), codec=record.codec)
            if copied != blob_id:
                raise StorageError(
                    f"blob id drift while persisting ({blob_id} -> {copied}); "
                    f"stores with deleted blobs need a FileBlobStore backend"
                )


def open_database(
    directory: Union[str, Path],
    disk_parameters: Optional[DiskParameters] = None,
    cpu_parameters: Optional[CpuParameters] = None,
    buffer_bytes: int = 0,
) -> Database:
    """Reopen a database previously written by :func:`save_database`.

    Objects are rebuilt by re-attaching their BLOBs; tile payloads are
    not read until queried.
    """
    directory = Path(directory)
    catalog_path = directory / CATALOG_NAME
    if not catalog_path.exists():
        raise StorageError(f"no database catalog at {catalog_path}")
    catalog = json.loads(catalog_path.read_text())
    if catalog.get("version") != CATALOG_VERSION:
        raise StorageError(
            f"unsupported catalog version {catalog.get('version')!r}"
        )

    store = FileBlobStore.open(directory / PAGES_NAME)
    database = Database(
        store=store,
        disk_parameters=disk_parameters,
        cpu_parameters=cpu_parameters,
        buffer_bytes=buffer_bytes,
    )
    for coll_name, objects in catalog["collections"].items():
        database.create_collection(coll_name)
        for payload in objects:
            mdd_type = _deserialise_type(payload["type"])
            obj = database.create_object(coll_name, mdd_type, payload["name"])
            for tile in payload["tiles"]:
                obj.attach_tile(
                    MInterval.parse(tile["domain"]), tile["blob"], tile["codec"]
                )
    return database
