"""Whole-database persistence: save, reopen, and crash-recover a directory.

The paper's system keeps its tile catalog inside the O2 base DBMS; here a
database directory plays that role:

    <dir>/blobs.pages               page file with every BLOB
    <dir>/blobs.pages.catalog.json  BLOB placement (FileBlobStore sidecar)
    <dir>/catalog.json              collections, objects, types, tile tables
    <dir>/wal.log                   write-ahead log (durable databases)

``save_database`` works from any store: with a :class:`FileBlobStore` the
payloads are already on disk and only catalogs are written; with a
:class:`MemoryBlobStore` every payload is copied into a fresh page file
(BLOB ids are preserved so tile tables stay valid).  Saving into a
durable database's home directory is a **checkpoint**: the log is
truncated once the catalogs are down.

``open_database`` rebuilds objects by re-attaching BLOBs — no cell data
is copied — and repopulates each object's spatial index.  Before that it
runs **recovery**: the write-ahead log is scanned, committed batches are
replayed idempotently onto the checkpoint, the torn tail is discarded,
and a fresh checkpoint is cut — so a database crashed at any write offset
reopens to exactly its last committed state.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro import obs
from repro.core.cells import base_type
from repro.core.errors import RecoveryError, StorageError
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.index.zonemap import TileSynopsis
from repro.storage.backends import FileBlobStore, MemoryBlobStore
from repro.storage.disk import CpuParameters, DiskParameters
from repro.storage.faults import FaultInjector
from repro.storage.tilestore import Database, StoredMDD
from repro.storage.wal import scan_wal

CATALOG_NAME = "catalog.json"
PAGES_NAME = "blobs.pages"
WAL_NAME = "wal.log"
ZONES_NAME = "zones.json"
CATALOG_VERSION = 1

_RECOVERIES = obs.counter("recovery.runs", "Recovery passes executed on open")
_TXNS_REPLAYED = obs.counter(
    "recovery.transactions_replayed", "Committed WAL transactions re-applied"
)
_RECORDS_REPLAYED = obs.counter(
    "recovery.records_replayed", "Redo records re-applied during recovery"
)
_RECORDS_DISCARDED = obs.counter(
    "recovery.records_discarded", "Uncommitted records dropped at recovery"
)
_TORN_BYTES = obs.counter(
    "recovery.torn_bytes", "Torn-tail bytes discarded from the log"
)


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    transactions_replayed: int = 0
    records_replayed: int = 0
    blobs_restored: int = 0
    records_discarded: int = 0
    torn_bytes: int = 0

    @property
    def clean(self) -> bool:
        """True when the log held nothing to replay or discard."""
        return (
            self.transactions_replayed == 0
            and self.records_discarded == 0
            and self.torn_bytes == 0
        )


def _serialise_type(mdd_type: MDDType) -> dict:
    return {
        "name": mdd_type.name,
        "base": mdd_type.base.name,
        "definition_domain": str(mdd_type.definition_domain),
    }


def _deserialise_type(payload: dict) -> MDDType:
    return MDDType(
        payload["name"],
        base_type(payload["base"]),
        MInterval.parse(payload["definition_domain"]),
    )


def _serialise_object(obj: StoredMDD) -> dict:
    return {
        "name": obj.name,
        "type": _serialise_type(obj.mdd_type),
        # Tile ids and the id counter are persisted so WAL records written
        # after this checkpoint keep resolving against the reloaded tables;
        # the domain survives partial covers whose hull exceeds the tiles.
        "next_tile_id": obj._next_tile_id,
        "domain": (
            str(obj.current_domain) if obj.current_domain is not None else None
        ),
        "tiles": [
            {
                "id": entry.tile_id,
                "domain": str(entry.domain),
                "blob": entry.blob_id,
                "codec": entry.codec,
                "virtual": entry.virtual,
            }
            for entry in obj.tile_entries()
        ],
    }


def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Persist a database (BLOBs + catalogs) into ``directory``.

    Returns the directory path.  Existing catalogs in the directory are
    overwritten; an existing page file is only reused when the database
    is already backed by it.

    For a durable database saving into its own directory this is the
    checkpoint operation: once payloads, sidecar, and catalog are on
    disk the write-ahead log is truncated — everything it redid is now
    in the checkpoint.  Checkpointing inside an open transaction is an
    error (the log would lose uncommitted buffered records).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    pages_path = directory / PAGES_NAME
    if database._txn_depth > 0:
        raise StorageError("cannot checkpoint inside an open transaction")

    store = database.store
    if isinstance(store, FileBlobStore):
        store.sync()
        if store.path.resolve() != pages_path.resolve():
            shutil.copy2(store.path, pages_path)
            shutil.copy2(
                store.catalog_path,
                pages_path.with_name(pages_path.name + FileBlobStore.CATALOG_SUFFIX),
            )
    elif isinstance(store, MemoryBlobStore):
        _copy_memory_store(store, pages_path)
    else:
        raise StorageError(
            f"cannot persist store of type {type(store).__name__}"
        )

    catalog = {
        "version": CATALOG_VERSION,
        "collections": {
            coll_name: [
                _serialise_object(obj) for obj in objects.values()
            ]
            for coll_name, objects in database.collections.items()
        },
    }
    tmp = directory / (CATALOG_NAME + ".tmp")
    tmp.write_text(json.dumps(catalog, indent=1))
    tmp.replace(directory / CATALOG_NAME)
    # Zone-map sidecar, next to the catalog it describes.  Written before
    # the WAL truncates: between checkpoints the synopses live in the
    # tile_register/tile_rebind redo records, so a crash at any point
    # rebuilds them along with the tiles they describe.
    zones = {
        "version": 1,
        "collections": {
            coll_name: {
                obj.name: {
                    str(tile_id): synopsis.to_dict()
                    for tile_id, synopsis in obj._zones.items()
                }
                for obj in objects.values()
            }
            for coll_name, objects in database.collections.items()
        },
    }
    tmp = directory / (ZONES_NAME + ".tmp")
    tmp.write_text(json.dumps(zones, indent=1))
    tmp.replace(directory / ZONES_NAME)
    if (
        database.wal is not None
        and isinstance(store, FileBlobStore)
        and store.path.resolve() == pages_path.resolve()
    ):
        # Home-directory checkpoint: the log's work is in the catalogs
        # now.  A copy elsewhere must NOT truncate — the home directory's
        # checkpoint would go stale while its log loses the redo records.
        database.wal.truncate()
    return directory


def _copy_memory_store(store: MemoryBlobStore, pages_path: Path) -> None:
    """Materialise an in-memory store as a page file, keeping BLOB ids
    and page placement identical."""
    if pages_path.exists():
        pages_path.unlink()
    with FileBlobStore(pages_path, page_size=store.page_size) as file_store:
        for blob_id in sorted(store.blob_ids()):
            record = store.record(blob_id)
            if record.virtual:
                copied = file_store.put_virtual(record.byte_size)
            else:
                copied = file_store.put(store.get(blob_id), codec=record.codec)
            if copied != blob_id:
                raise StorageError(
                    f"blob id drift while persisting ({blob_id} -> {copied}); "
                    f"stores with deleted blobs need a FileBlobStore backend"
                )


def open_database(
    directory: Union[str, Path],
    disk_parameters: Optional[DiskParameters] = None,
    cpu_parameters: Optional[CpuParameters] = None,
    buffer_bytes: int = 0,
    durability: str = "none",
    injector: Optional[FaultInjector] = None,
    **database_kwargs,
) -> Database:
    """Reopen a database previously written by :func:`save_database`.

    Objects are rebuilt by re-attaching their BLOBs; tile payloads are
    not read until queried.

    When the directory holds a write-ahead log, recovery runs first: the
    log is scanned (committed batches kept, the torn tail measured and
    dropped), the checkpoint is loaded, the batches are replayed onto it,
    and a fresh checkpoint is cut before the log restarts empty.  The
    outcome is attached as ``database.last_recovery``
    (a :class:`RecoveryReport`).  ``durability`` arms the reopened
    database; recovery itself runs regardless of the requested mode, so
    a crashed ``wal`` database reopened with ``durability='none'`` still
    comes back consistent.
    """
    directory = Path(directory)
    catalog_path = directory / CATALOG_NAME
    if not catalog_path.exists():
        raise StorageError(f"no database catalog at {catalog_path}")
    catalog = json.loads(catalog_path.read_text())
    if catalog.get("version") != CATALOG_VERSION:
        raise StorageError(
            f"unsupported catalog version {catalog.get('version')!r}"
        )

    wal_path = directory / WAL_NAME
    scan = scan_wal(wal_path)  # read the log before any writer touches it

    store = FileBlobStore.open(directory / PAGES_NAME, injector=injector)
    database = Database(
        store=store,
        disk_parameters=disk_parameters,
        cpu_parameters=cpu_parameters,
        buffer_bytes=buffer_bytes,
        **database_kwargs,
    )
    zones_path = directory / ZONES_NAME
    zone_payload: dict = {}
    if zones_path.exists():
        # Absent for pre-zone-map checkpoints: the objects reopen with no
        # synopses (reads fall back to full decode) and fsck warns.
        zone_payload = json.loads(zones_path.read_text()).get(
            "collections", {}
        )
    for coll_name, objects in catalog["collections"].items():
        database.create_collection(coll_name)
        for payload in objects:
            mdd_type = _deserialise_type(payload["type"])
            obj = database.create_object(coll_name, mdd_type, payload["name"])
            obj_zones = zone_payload.get(coll_name, {}).get(
                payload["name"], {}
            )
            for tile in payload["tiles"]:
                synopsis = obj_zones.get(str(tile.get("id")))
                obj.attach_tile(
                    MInterval.parse(tile["domain"]),
                    tile["blob"],
                    tile["codec"],
                    tile_id=tile.get("id"),
                    synopsis=(
                        TileSynopsis.from_dict(synopsis)
                        if synopsis is not None
                        else None
                    ),
                )
            if "next_tile_id" in payload:
                obj._next_tile_id = max(
                    obj._next_tile_id, payload["next_tile_id"]
                )
            domain = payload.get("domain")
            if domain is not None:
                obj._current_domain = MInterval.parse(domain)

    report = RecoveryReport(
        records_discarded=scan.uncommitted_records,
        torn_bytes=scan.torn_bytes,
    )
    if not scan.empty:
        _RECOVERIES.inc()
        for batch in scan.batches:
            for record in batch.records:
                if _apply_record(database, record) == "blob_put":
                    report.blobs_restored += 1
                report.records_replayed += 1
            report.transactions_replayed += 1
        _TXNS_REPLAYED.inc(report.transactions_replayed)
        _RECORDS_REPLAYED.inc(report.records_replayed)
        _RECORDS_DISCARDED.inc(report.records_discarded)
        _TORN_BYTES.inc(report.torn_bytes)
        # Cut a fresh checkpoint with the replayed state, then retire the
        # log: replaying it again would be idempotent but pointless.
        save_database(database, directory)
        wal_path.unlink(missing_ok=True)
    # Reload and replay mutated working state outside any transaction;
    # freeze the final state as what concurrent readers will see.
    database.republish()
    database.last_recovery = report
    if durability != "none":
        database.arm_durability(
            durability, wal_path=wal_path, injector=injector
        )
    return database


def create_database(
    directory: Union[str, Path],
    durability: str = "none",
    page_size: Optional[int] = None,
    injector: Optional[FaultInjector] = None,
    **database_kwargs,
) -> Database:
    """Create a fresh file-backed database directory.

    Writes an empty checkpoint immediately, so a crash before the first
    commit still leaves an openable (empty) database, then arms the
    requested durability mode.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    pages_path = directory / PAGES_NAME
    if (directory / CATALOG_NAME).exists():
        raise StorageError(f"database already exists at {directory}")
    store_kwargs = {} if page_size is None else {"page_size": page_size}
    store = FileBlobStore(pages_path, injector=injector, **store_kwargs)
    database = Database(store=store, **database_kwargs)
    save_database(database, directory)
    if durability != "none":
        database.arm_durability(
            durability, wal_path=directory / WAL_NAME, injector=injector
        )
    return database


def _apply_record(database: Database, record: tuple) -> str:
    """Replay one decoded WAL record onto a freshly opened database.

    Every application is idempotent, because a crash between the
    recovery checkpoint and the log retirement replays the same records
    onto a checkpoint that already contains them.
    """
    kind = record[0]
    store = database.store
    if kind == "blob_put":
        _, blob_record, raw = record
        store.restore(blob_record, None if blob_record.virtual else raw)
        return kind
    operation = record[1]
    op = operation.get("op")
    if op == "create_collection":
        database.collections.setdefault(operation["coll"], {})
        return kind
    if op == "blob_delete":
        if operation["blob"] in store:
            store.delete(operation["blob"])
        return kind
    coll = database.collections.setdefault(operation.get("coll", ""), {})
    if op == "create_object":
        if operation["obj"] not in coll:
            spec = operation["type"]
            mdd_type = MDDType(
                spec["name"],
                base_type(spec["base"]),
                MInterval.parse(spec["dd"]),
            )
            coll[operation["obj"]] = StoredMDD(
                database, mdd_type, operation["obj"],
                collection=operation["coll"],
            )
        return kind
    obj = coll.get(operation.get("obj", ""))
    if obj is None:
        raise RecoveryError(
            f"log names unknown object {operation.get('obj')!r} in "
            f"collection {operation.get('coll')!r} (op {op!r})"
        )
    if op == "tile_register":
        zone = operation.get("zone")
        if operation["tile_id"] not in obj._tiles:
            obj.attach_tile(
                MInterval.parse(operation["domain"]),
                operation["blob"],
                operation["codec"],
                tile_id=operation["tile_id"],
                synopsis=(
                    TileSynopsis.from_dict(zone) if zone is not None else None
                ),
            )
        elif zone is not None:
            # Tile already in the checkpoint: re-apply the synopsis too,
            # so tile and zone entry stay paired under double replay.
            obj._zones[operation["tile_id"]] = TileSynopsis.from_dict(zone)
    elif op == "tile_remove":
        if operation["tile_id"] in obj._tiles:
            obj.index.remove(operation["tile_id"])
            del obj._tiles[operation["tile_id"]]
        obj._zones.pop(operation["tile_id"], None)
    elif op == "tile_rebind":
        entry = obj._tiles.get(operation["tile_id"])
        if entry is None:
            raise RecoveryError(
                f"log rebinds unknown tile {operation['tile_id']} of "
                f"{obj.name!r}"
            )
        entry.blob_id = operation["blob"]
        entry.codec = operation["codec"]
        if "zone" in operation:
            zone = operation["zone"]
            if zone is not None:
                obj._zones[entry.tile_id] = TileSynopsis.from_dict(zone)
            else:
                obj._zones.pop(entry.tile_id, None)
    elif op == "object_domain":
        domain = operation["domain"]
        obj._current_domain = (
            MInterval.parse(domain) if domain is not None else None
        )
    elif op == "object_clear":
        obj._tiles.clear()
        obj._zones.clear()
        obj.index = database.make_index(obj.dim)
        obj._current_domain = None
    else:
        raise RecoveryError(f"unknown redo operation {op!r}")
    return kind
