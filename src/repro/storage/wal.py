"""Write-ahead log: redo records, group commit, torn-tail detection.

The paper's storage manager trusts O2 to land tiles safely; this module
is the reproduction's own durability substrate.  Every mutation of a
durable :class:`~repro.storage.tilestore.Database` — BLOB writes, tile
table updates, catalog changes — first becomes a redo record here, and
the backend page file is touched only after the records are on the log
(the WAL rule).  Recovery is therefore redo-only: replay committed
batches onto the last checkpoint, discard the torn tail, done.

Log layout (all integers little-endian)::

    file   := header record*
    header := magic "REPROWAL" | u32 version | u32 page_size
    record := u32 payload_len | u32 crc32c | u8 type | u64 lsn | payload

The framing CRC32C covers ``type || lsn || payload`` (for ``BLOB_PUT2``:
``type || lsn || meta``), so any torn or bit-flipped record fails
verification and scanning stops there — everything after an invalid
record is discarded (records are only meaningful in log order).

Record types:

===============  ======================================================
``META (1)``     JSON logical operation (``{"op": ...}``): catalog and
                 tile-table mutations, object domain updates.
``BLOB_PUT (2)`` ``u32 meta_len | meta JSON | raw payload``.  The JSON
                 carries id, sizes, page placement, codec, virtual
                 flag; the raw bytes are the exact stored payload.
                 Legacy (v1 logs): still decoded, no longer written.
``COMMIT (3)``   JSON ``{"txn": n, "records": k}`` sealing the ``k``
                 preceding records as transaction ``n``.
``BLOB_PUT2(4)`` Same layout as ``BLOB_PUT``, but the meta JSON also
                 carries ``"crcs"``: one CRC32C per storage page of the
                 raw payload, and the framing CRC covers only
                 ``type || lsn || meta`` — the raw tail is verified
                 against the page CRCs instead.  Detection strength is
                 unchanged (every raw byte is still CRC-guarded; a torn
                 tail fails the length framing), but the page CRCs are
                 now computed **once** — shared with the store's page
                 sidecar and, on the batched ingest path, produced by
                 one lockstep-vectorised pass over the whole batch —
                 instead of CRC-ing every payload twice per tile.
===============  ======================================================

Group commit: records buffer in memory while a transaction runs and hit
the file as **one** ``write`` call at commit, commit record included, so
a multi-tile ``load_array`` costs one write (and, in ``wal+fsync`` mode,
one fsync) instead of one per tile.  A crash mid-commit leaves a torn
uncommitted tail that recovery drops — exactly the atomicity the tile
stores above rely on.
"""

from __future__ import annotations

import json
import struct
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro import obs
from repro.core.errors import WalError
from repro.storage.blob import BlobRecord
from repro.storage.checksum import crc32c, page_checksums, verify_page_checksums
from repro.storage.disk import SimulatedDisk
from repro.storage.faults import FaultInjector, fsync_file
from repro.storage.latch import OrderedLatch, schedule_point
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageRange

MAGIC = b"REPROWAL"
VERSION = 2  # v2 adds BLOB_PUT2; v1 logs are still scanned
_SUPPORTED_VERSIONS = (1, 2)
_HEADER = struct.Struct("<8sII")
_RECORD = struct.Struct("<IIBQ")
_U32 = struct.Struct("<I")

META = 1
BLOB_PUT = 2
COMMIT = 3
BLOB_PUT2 = 4

_RECORDS = obs.counter("wal.records", "Redo records appended (buffered)")
_COMMITS = obs.counter("wal.commits", "Transactions committed to the log")
_ABORTS = obs.counter("wal.aborts", "Transactions aborted (records dropped)")
_BYTES = obs.counter("wal.bytes_written", "Bytes appended to the log file")
_FSYNCS = obs.counter("wal.fsyncs", "fsync calls issued by the log")
_TRUNCATES = obs.counter("wal.truncates", "Log truncations after checkpoints")
_COMMIT_BYTES = obs.histogram(
    "wal.commit_bytes", "Bytes per group-commit write", buckets=obs.BYTE_BUCKETS
)
_GROUP_SIZE = obs.histogram(
    "wal.group_size", "Records per committed transaction",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)
_FSYNC_SHARED = obs.counter(
    "wal.fsyncs_shared",
    "Commits made durable by a concurrent leader's fsync (group commit)",
)
_FSYNC_LEADERS = obs.counter(
    "wal.fsync_leaders",
    "Group-commit leader elections (threads that issued the fsync)",
)
_FSYNC_MS = obs.histogram(
    "wal.fsync_ms", "Wall time per fsync issued by the log (ms)"
)


@dataclass
class WalStats:
    """Local activity counters (measurement state, reset by the clock)."""

    records: int = 0
    commits: int = 0
    aborts: int = 0
    bytes_written: int = 0
    fsyncs: int = 0

    def reset(self) -> None:
        self.records = 0
        self.commits = 0
        self.aborts = 0
        self.bytes_written = 0
        self.fsyncs = 0


@dataclass
class WalBatch:
    """One committed transaction, decoded: ``(kind, ...)`` tuples.

    ``("meta", dict)`` for logical operations, ``("blob_put", BlobRecord,
    payload_bytes)`` for payload redo records.
    """

    txn: int
    records: list = field(default_factory=list)


@dataclass
class WalScan:
    """Outcome of reading a log file front to back."""

    batches: list[WalBatch] = field(default_factory=list)
    committed_records: int = 0
    uncommitted_records: int = 0
    torn_bytes: int = 0
    valid_bytes: int = 0

    @property
    def empty(self) -> bool:
        return (
            not self.batches
            and self.uncommitted_records == 0
            and self.torn_bytes == 0
        )


def encode_record(rtype: int, lsn: int, payload: bytes) -> bytes:
    """Frame one record: length, CRC32C, type, LSN, payload."""
    crc = crc32c(bytes([rtype]) + lsn.to_bytes(8, "little") + payload)
    return _RECORD.pack(len(payload), crc, rtype, lsn) + payload


def _blob_meta(record: BlobRecord) -> dict:
    return {
        "id": record.blob_id,
        "size": record.byte_size,
        "stored": record.stored_size,
        "start": record.pages.start,
        "count": record.pages.count,
        "virtual": record.virtual,
        "codec": record.codec,
    }


def _blob_record(meta: dict) -> BlobRecord:
    return BlobRecord(
        blob_id=meta["id"],
        byte_size=meta["size"],
        pages=PageRange(meta["start"], meta["count"]),
        virtual=meta["virtual"],
        codec=meta["codec"],
        stored_size=meta["stored"],
    )


def _split_blob_payload(payload: bytes, kind: str) -> tuple[dict, bytes]:
    if len(payload) < _U32.size:
        raise WalError(f"{kind} record too short for its meta length")
    (meta_len,) = _U32.unpack_from(payload)
    meta_end = _U32.size + meta_len
    if len(payload) < meta_end:
        raise WalError(f"{kind} record too short for its meta JSON")
    meta = json.loads(payload[_U32.size : meta_end].decode("utf-8"))
    return meta, payload[meta_end:]


def encode_blob_put(record: BlobRecord, payload: bytes) -> bytes:
    """The BLOB_PUT payload: placement JSON plus the raw stored bytes."""
    meta = json.dumps(_blob_meta(record), separators=(",", ":")).encode("utf-8")
    return _U32.pack(len(meta)) + meta + payload


def decode_blob_put(payload: bytes) -> tuple[BlobRecord, bytes]:
    """Inverse of :func:`encode_blob_put`."""
    meta, raw = _split_blob_payload(payload, "BLOB_PUT")
    record = _blob_record(meta)
    if not record.virtual and len(raw) != record.stored_size:
        raise WalError(
            f"BLOB_PUT for blob {record.blob_id} carries {len(raw)} bytes, "
            f"meta says {record.stored_size}"
        )
    return record, raw


def encode_blob_put2(
    lsn: int, record: BlobRecord, payload: bytes, page_crcs: list[int]
) -> bytes:
    """Frame a complete BLOB_PUT2 record.

    Unlike :func:`encode_record`, the framing CRC covers only
    ``type || lsn || meta`` — the raw tail is guarded by the per-page
    CRCs carried inside the meta, so the (expensive) payload checksum is
    computed once and shared with the store's page sidecar.
    """
    blob_meta = _blob_meta(record)
    blob_meta["crcs"] = list(page_crcs)
    meta = json.dumps(blob_meta, separators=(",", ":")).encode("utf-8")
    prefix = _U32.pack(len(meta)) + meta
    crc = crc32c(bytes([BLOB_PUT2]) + lsn.to_bytes(8, "little") + prefix)
    return _RECORD.pack(len(prefix) + len(payload), crc, BLOB_PUT2, lsn) + prefix + payload


def decode_blob_put2(
    payload: bytes, page_size: int
) -> tuple[BlobRecord, bytes]:
    """Inverse of :func:`encode_blob_put2`; verifies the raw tail.

    The framing CRC only vouched for the meta, so the page CRCs are
    checked here — a corrupt tail raises :class:`WalError` and the scan
    stops at this record, exactly as a framing-CRC failure would.
    """
    meta, raw = _split_blob_payload(payload, "BLOB_PUT2")
    record = _blob_record(meta)
    if not record.virtual:
        if len(raw) != record.stored_size:
            raise WalError(
                f"BLOB_PUT2 for blob {record.blob_id} carries {len(raw)} "
                f"bytes, meta says {record.stored_size}"
            )
        bad = verify_page_checksums(raw, page_size, meta.get("crcs") or [])
        if bad:
            raise WalError(
                f"BLOB_PUT2 for blob {record.blob_id}: page CRC mismatch "
                f"on page(s) {bad}"
            )
    return record, raw


class WriteAheadLog:
    """Append-only redo log with buffered transactions and group commit."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync: bool = False,
        page_size: int = DEFAULT_PAGE_SIZE,
        injector: Optional[FaultInjector] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.page_size = page_size
        self.disk = disk
        self.stats = WalStats()
        self._next_lsn = 1
        self._next_txn = 1
        # Buffers are per-thread: each in-flight transaction accumulates
        # its own records, so one commit frame can never interleave two
        # transactions' records (asserted by the concurrency suite).
        self._local = threading.local()
        # Guards LSN/txn counters, file appends, and the frame sequence.
        self._append_latch = OrderedLatch("wal.append", 20, reentrant=True)
        # Guards the group-commit door (leader flag, synced sequence).
        self._sync_latch = OrderedLatch("wal.sync", 25)
        self._written_seq = 0  # frames written+flushed (under append latch)
        self._synced_seq = 0  # frames covered by an fsync (under sync latch)
        self._sync_leader = False
        self._total_buffered = 0  # records buffered across all threads
        raw = open(self.path, "w+b")
        self._file = injector.wrap(raw, "wal") if injector else raw
        self._file.write(_HEADER.pack(MAGIC, VERSION, page_size))
        self._file.flush()

    # -- appends (buffered until commit) ---------------------------------

    def _buf(self) -> list:
        buf = getattr(self._local, "buffer", None)
        if buf is None:
            buf = self._local.buffer = []
        return buf

    def _append(self, rtype: int, payload: bytes) -> int:
        with self._append_latch:
            lsn = self._next_lsn
            self._next_lsn += 1
            self._total_buffered += 1
            self.stats.records += 1
        self._buf().append(encode_record(rtype, lsn, payload))
        _RECORDS.inc()
        return lsn

    def log_meta(self, operation: dict) -> int:
        """Buffer one logical redo operation (``{"op": ...}``)."""
        payload = json.dumps(operation, separators=(",", ":")).encode("utf-8")
        return self._append(META, payload)

    def log_blob_put(
        self,
        record: BlobRecord,
        payload: bytes,
        page_crcs: Optional[list[int]] = None,
    ) -> int:
        """Buffer a payload redo record (empty payload for virtual BLOBs).

        ``page_crcs`` lets the caller pass CRCs it already computed for
        the store's page sidecar (the batched ingest path computes them
        vectorised for the whole batch); omitted, they are computed here.
        """
        if record.virtual:
            page_crcs = []
        elif page_crcs is None:
            page_crcs = page_checksums(payload, self.page_size)
        with self._append_latch:
            lsn = self._next_lsn
            self._next_lsn += 1
            self._total_buffered += 1
            self.stats.records += 1
        self._buf().append(encode_blob_put2(lsn, record, payload, page_crcs))
        _RECORDS.inc()
        return lsn

    @property
    def buffered_records(self) -> int:
        """Records buffered by the calling thread's open transaction."""
        return len(self._buf())

    # -- transaction boundaries ------------------------------------------

    def commit_frame(self) -> Optional[tuple[int, int]]:
        """Seal this thread's buffered records into one commit frame.

        The records plus the COMMIT record go out as a single ``write``
        call under the append latch, so frames from concurrent
        transactions never interleave.  Returns ``(txn, seq)`` where
        ``seq`` is the frame's position in the file — the handle
        :meth:`sync_to` uses to make it durable — or ``None`` when this
        thread buffered nothing.  The frame is flushed to the OS but
        **not** fsynced here.
        """
        buf = self._buf()
        if not buf:
            return None
        group = len(buf)
        with self._append_latch:
            txn = self._next_txn
            self._next_txn += 1
            commit_payload = json.dumps(
                {"txn": txn, "records": group},
                separators=(",", ":"),
            ).encode("utf-8")
            batch = b"".join(buf) + encode_record(
                COMMIT, self._next_lsn, commit_payload
            )
            self._next_lsn += 1
            buf.clear()
            self._total_buffered -= group
            self._file.write(batch)
            self._file.flush()
            self._written_seq += 1
            seq = self._written_seq
            self.stats.commits += 1
            self.stats.bytes_written += len(batch)
        _COMMITS.inc()
        _BYTES.inc(len(batch))
        _COMMIT_BYTES.observe(len(batch))
        _GROUP_SIZE.observe(group)
        if self.disk is not None:
            self.disk.charge_log_append(len(batch), fsync=self.fsync)
        return txn, seq

    def sync_to(self, seq: int) -> None:
        """Make the log durable through frame ``seq`` (group-commit door).

        In ``fsync`` mode, concurrent committers elect one **leader**
        that issues a single fsync covering every frame written so far;
        the others spin until the synced sequence passes their frame and
        return without an fsync of their own.  A leader that crashes
        mid-fsync releases leadership in ``finally`` so waiting
        followers retry (and hit the same dead file) instead of hanging.
        """
        if not self.fsync:
            return
        shared = False
        while True:
            with self._sync_latch:
                if self._synced_seq >= seq:
                    if shared:
                        _FSYNC_SHARED.inc()
                    return
                if not self._sync_leader:
                    self._sync_leader = True
                    # Cover everything written so far, not just our own
                    # frame — that is what lets followers share the sync.
                    target = max(self._written_seq, seq)
                    break
            shared = True
            if not schedule_point("wal.sync.wait"):
                time.sleep(0.0002)
        synced = False
        started = time.perf_counter()
        try:
            fsync_file(self._file)
            synced = True
        finally:
            with self._sync_latch:
                self._sync_leader = False
                if synced:
                    self._synced_seq = max(self._synced_seq, target)
        self.stats.fsyncs += 1
        _FSYNCS.inc()
        _FSYNC_LEADERS.inc()
        _FSYNC_MS.observe((time.perf_counter() - started) * 1000.0)

    def commit(self) -> Optional[int]:
        """Group-commit the buffered records; returns the txn id.

        Equivalent to :meth:`commit_frame` followed by :meth:`sync_to`;
        an empty buffer commits nothing and returns ``None``.
        """
        sealed = self.commit_frame()
        if sealed is None:
            return None
        txn, seq = sealed
        self.sync_to(seq)
        return txn

    def abort(self) -> int:
        """Drop this thread's buffered records; returns how many."""
        buf = self._buf()
        dropped = len(buf)
        buf.clear()
        if dropped:
            with self._append_latch:
                self._total_buffered -= dropped
                self.stats.aborts += 1
            _ABORTS.inc()
        return dropped

    # -- lifecycle --------------------------------------------------------

    def truncate(self) -> None:
        """Reset the log to an empty header (after a checkpoint)."""
        with self._append_latch:
            if self._total_buffered:
                raise WalError(
                    "cannot truncate with uncommitted buffered records"
                )
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(_HEADER.pack(MAGIC, VERSION, self.page_size))
            fsync_file(self._file)
        _TRUNCATES.inc()

    def close(self) -> None:
        if self._buf():
            self.abort()
        with self._append_latch:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


# ----------------------------------------------------------------------
# Scanning (recovery read path)
# ----------------------------------------------------------------------

def _iter_records(data: bytes) -> Iterator[tuple[int, int, int, bytes]]:
    """Yield ``(offset, type, lsn, payload)`` until the first invalid or
    torn record; the caller computes the discarded tail from the last
    good offset."""
    offset = 0
    end = len(data)
    while offset + _RECORD.size <= end:
        length, crc, rtype, lsn = _RECORD.unpack_from(data, offset)
        payload_start = offset + _RECORD.size
        if payload_start + length > end:
            return  # torn: payload runs past EOF
        if rtype not in (META, BLOB_PUT, COMMIT, BLOB_PUT2):
            return  # unknown type: stop, everything after is untrusted
        payload = data[payload_start : payload_start + length]
        if rtype == BLOB_PUT2:
            # the framing CRC covers only the meta prefix; the raw tail
            # is checked against the page CRCs by decode_blob_put2
            if length < _U32.size:
                return
            (meta_len,) = _U32.unpack_from(payload)
            covered_end = _U32.size + meta_len
            if covered_end > length:
                return  # meta length itself is implausible: torn/corrupt
            covered = payload[:covered_end]
        else:
            covered = payload
        expected = crc32c(bytes([rtype]) + lsn.to_bytes(8, "little") + covered)
        if crc != expected:
            return  # corrupt record: stop, everything after is untrusted
        yield offset, rtype, lsn, payload
        offset = payload_start + length


def scan_wal(path: Union[str, Path]) -> WalScan:
    """Read a log file and split it into committed batches plus tail info.

    Records up to and including each valid ``COMMIT`` form a batch;
    records after the last commit (or after the first corrupt record) are
    the discarded tail.  A missing file scans as empty.
    """
    path = Path(path)
    scan = WalScan()
    if not path.exists():
        return scan
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        scan.torn_bytes = len(data)
        return scan
    magic, version, page_size = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WalError(f"{path} is not a write-ahead log (bad magic)")
    if version not in _SUPPORTED_VERSIONS:
        raise WalError(f"unsupported WAL version {version} in {path}")
    body = data[_HEADER.size :]
    open_records: list = []
    consumed = 0
    for offset, rtype, _lsn, payload in _iter_records(body):
        if rtype == COMMIT:
            seal = json.loads(payload.decode("utf-8"))
            if seal.get("records") != len(open_records):
                break  # commit does not seal what precedes it: stop
            scan.batches.append(WalBatch(seal["txn"], open_records))
            scan.committed_records += len(open_records)
            open_records = []
            consumed = offset + _RECORD.size + len(payload)
        elif rtype == META:
            open_records.append(("meta", json.loads(payload.decode("utf-8"))))
        else:
            try:
                if rtype == BLOB_PUT2:
                    record, raw = decode_blob_put2(payload, page_size)
                else:
                    record, raw = decode_blob_put(payload)
            except WalError:
                break  # framing valid but content malformed: stop here
            open_records.append(("blob_put", record, raw))
    scan.uncommitted_records = len(open_records)
    scan.valid_bytes = _HEADER.size + consumed
    scan.torn_bytes = len(data) - scan.valid_bytes
    return scan
