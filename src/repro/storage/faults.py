"""Deterministic fault injection for the durability layer.

Crash safety cannot be claimed, only demonstrated — and a demonstration
needs crashes on demand.  This module wraps the real files behind the
:class:`~repro.storage.backends.FileBlobStore` page file and the
write-ahead log with a byte-counting proxy that can, at an exact point in
the global write stream:

* **tear a write** — persist only a prefix of the buffer, then raise
  :class:`SimulatedCrash` (torn page / torn log record);
* **kill after N operations** — crash before the (N+1)-th write/fsync
  (crash-after-N-ops schedules);
* **flip a bit** — silently corrupt one bit of what hits the medium and
  keep going (the corruption page checksums must later catch);
* **crash at an fsync boundary** — the data of the fsync is durable but
  the caller never learns (commit-durable-but-unacknowledged).

Writes are write-through: bytes that the proxy passes on are on the real
filesystem, exactly as a crashed process would leave them.  A plan is a
plain dataclass, so every failure is replayable; :meth:`FaultPlan.from_seed`
derives one deterministically from an integer seed and the write-stream
length observed on a clean run (measure with a plan-free injector first —
its counters tell you the total bytes and ops).

After a crash trips, every further write or sync through the injector
raises again: a dead process does not keep writing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random
from typing import IO, Optional

from repro import obs
from repro.core.errors import ReproError

_TORN_WRITES = obs.counter("faults.torn_writes", "Writes cut short by injection")
_BIT_FLIPS = obs.counter("faults.bit_flips", "Bits silently flipped on write")
_CRASHES = obs.counter("faults.crashes", "Simulated crashes raised")


class SimulatedCrash(ReproError):
    """The injected process death; abandon the database object and reopen."""


@dataclass(frozen=True)
class FaultPlan:
    """A replayable failure schedule over the global write stream.

    Offsets are cumulative bytes across every wrapped file, in write
    order; ops count ``write`` and ``fsync`` calls together.  ``None``
    disables a fault.  ``crash_at_byte=k`` means exactly ``k`` bytes
    reach the media before the crash (``k=0`` crashes on the first
    write, persisting nothing).
    """

    crash_at_byte: Optional[int] = None
    crash_after_ops: Optional[int] = None
    crash_at_fsync: Optional[int] = None
    flip_bit_at: Optional[int] = None
    flip_bit: int = 0

    @classmethod
    def from_seed(
        cls, seed: int, total_bytes: int, total_ops: int = 0
    ) -> "FaultPlan":
        """Derive a schedule from a seed and a clean run's write volume.

        Seeds rotate through the failure modes so a small seed matrix
        (the CI gauntlet runs 0..4) exercises torn writes, op kills,
        fsync-boundary crashes and bit flips.
        """
        rng = Random(seed)
        mode = seed % 4
        if mode == 0:
            return cls(crash_at_byte=rng.randrange(max(1, total_bytes)))
        if mode == 1:
            return cls(crash_after_ops=rng.randrange(max(1, total_ops or 1)))
        if mode == 2:
            return cls(crash_at_fsync=rng.randrange(4))
        return cls(
            flip_bit_at=rng.randrange(max(1, total_bytes)),
            flip_bit=rng.randrange(8),
        )


class FaultInjector:
    """Shared write-stream state for every file wrapped under one plan."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.bytes_written = 0
        self.ops = 0
        self.fsyncs = 0
        self.flipped = False
        self.tripped = False

    def wrap(self, fileobj: IO[bytes], tag: str = "") -> "FaultyFile":
        """Proxy ``fileobj`` so its writes run through this injector."""
        return FaultyFile(fileobj, self, tag)

    # -- decisions (called by FaultyFile) --------------------------------

    def _crash(self, reason: str) -> None:
        self.tripped = True
        _CRASHES.inc()
        raise SimulatedCrash(reason)

    def check_alive(self) -> None:
        if self.tripped:
            raise SimulatedCrash("process already crashed")

    def on_write(self, data: bytes, tag: str) -> bytes:
        """Account one write; returns the (possibly corrupted) bytes to
        persist, raising :class:`SimulatedCrash` after a torn prefix."""
        self.check_alive()
        plan = self.plan
        if plan.crash_after_ops is not None and self.ops >= plan.crash_after_ops:
            self._crash(f"crash after {self.ops} ops (write to {tag})")
        self.ops += 1
        start = self.bytes_written
        if plan.flip_bit_at is not None and not self.flipped:
            offset = plan.flip_bit_at - start
            if 0 <= offset < len(data):
                corrupted = bytearray(data)
                corrupted[offset] ^= 1 << (plan.flip_bit & 7)
                data = bytes(corrupted)
                self.flipped = True
                _BIT_FLIPS.inc()
        if plan.crash_at_byte is not None and start + len(data) > plan.crash_at_byte:
            keep = max(0, plan.crash_at_byte - start)
            self.bytes_written += keep
            if keep < len(data):
                _TORN_WRITES.inc()
            return data[:keep]  # caller persists the prefix, then we crash
        self.bytes_written += len(data)
        return data

    def after_write(self, tag: str) -> None:
        plan = self.plan
        if (
            plan.crash_at_byte is not None
            and self.bytes_written >= plan.crash_at_byte
        ):
            self._crash(f"crash at write byte {plan.crash_at_byte} ({tag})")

    def on_fsync(self, tag: str) -> None:
        """Account one fsync; crashes *after* the sync when scheduled."""
        self.check_alive()
        plan = self.plan
        if plan.crash_after_ops is not None and self.ops >= plan.crash_after_ops:
            self._crash(f"crash after {self.ops} ops (fsync of {tag})")
        self.ops += 1
        self.fsyncs += 1

    def after_fsync(self, tag: str) -> None:
        plan = self.plan
        if plan.crash_at_fsync is not None and self.fsyncs > plan.crash_at_fsync:
            self._crash(f"crash at fsync #{plan.crash_at_fsync} ({tag})")


class FaultyFile:
    """File proxy: write-through with injected faults; reads untouched."""

    def __init__(self, fileobj: IO[bytes], injector: FaultInjector, tag: str) -> None:
        self._file = fileobj
        self._injector = injector
        self.tag = tag

    # -- faulted operations ----------------------------------------------

    def write(self, data: bytes) -> int:
        to_persist = self._injector.on_write(bytes(data), self.tag)
        if to_persist:
            self._file.write(to_persist)
        # Flush through to the OS immediately: what this proxy reports as
        # written must be exactly what a post-crash reopen finds.
        self._file.flush()
        self._injector.after_write(self.tag)
        return len(data)

    def sync_to_disk(self) -> None:
        """flush + fsync with fault accounting (use via :func:`fsync_file`)."""
        self._injector.on_fsync(self.tag)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._injector.after_fsync(self.tag)

    # -- transparent pass-through ----------------------------------------

    def read(self, size: int = -1) -> bytes:
        return self._file.read(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._file.seek(offset, whence)

    def tell(self) -> int:
        return self._file.tell()

    def truncate(self, size: Optional[int] = None) -> int:
        return self._file.truncate(size)

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed


def fsync_file(fileobj) -> None:
    """Durably flush a file, routing through fault injection when wrapped."""
    if hasattr(fileobj, "sync_to_disk"):
        fileobj.sync_to_disk()
    else:
        fileobj.flush()
        os.fsync(fileobj.fileno())
