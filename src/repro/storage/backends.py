"""Concrete BLOB store backends: in-memory and page-file.

``MemoryBlobStore`` keeps payloads in a dict — the default for tests and
benchmarks, where I/O time comes from the deterministic disk model rather
than the host machine.

``FileBlobStore`` writes payloads into a real page file at their allocated
page offsets, with a JSON catalog sidecar, so databases survive process
restarts.  It demonstrates that the page placement the disk model charges
for is the placement actually used on disk.

Durability hardening: every payload write records a CRC32C per storage
page (persisted in the sidecar) and every read verifies them, so a torn
page or a flipped bit surfaces as a
:class:`~repro.core.errors.ChecksumError` instead of silently corrupt
cells.  An optional :class:`~repro.storage.faults.FaultInjector` wraps
the page file for crash testing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro import obs
from repro.core.errors import ChecksumError, StorageError
from repro.storage.blob import BlobRecord, BlobStore
from repro.storage.checksum import (
    page_checksums,
    page_checksums_many,
    verify_page_checksums,
)
from repro.storage.faults import FaultInjector, fsync_file
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageRange

_PAGES_VERIFIED = obs.counter(
    "checksum.pages_verified", "Storage pages whose CRC32C was checked on read"
)
_PAGE_FAILURES = obs.counter(
    "checksum.page_failures", "Storage pages failing CRC32C verification"
)


class MemoryBlobStore(BlobStore):
    """Dictionary-backed store; payloads never touch the filesystem."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._payloads: dict[int, bytes] = {}

    def _write_payload(self, record: BlobRecord, payload: bytes) -> None:
        self._payloads[record.blob_id] = payload

    def _read_payload(self, record: BlobRecord) -> bytes:
        return self._payloads[record.blob_id]

    def _delete_payload(self, record: BlobRecord) -> None:
        self._payloads.pop(record.blob_id, None)

    @property
    def payload_bytes(self) -> int:
        """Total real payload bytes held."""
        return sum(len(p) for p in self._payloads.values())


class FileBlobStore(BlobStore):
    """Page-file backed store with a JSON catalog sidecar.

    Layout: ``<path>`` is the page file (BLOB ``k`` lives at byte offset
    ``pages.start * page_size``); ``<path>.catalog.json`` records the
    catalog.  Call :meth:`sync` (or use as a context manager) to persist
    the catalog; :meth:`open` reloads an existing store.

    ``checksums`` (default on) records a CRC32C per page of every real
    payload and verifies on read; ``injector`` routes page-file writes
    through a :class:`~repro.storage.faults.FaultInjector` for crash
    testing.
    """

    CATALOG_SUFFIX = ".catalog.json"

    def __init__(
        self,
        path: Union[str, Path],
        page_size: int = DEFAULT_PAGE_SIZE,
        checksums: bool = True,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(page_size)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.checksums = checksums
        self._page_crcs: dict[int, list[int]] = {}
        # "a+b" must be avoided: O_APPEND redirects every write to the file
        # end, ignoring seek positions, which would corrupt page placement.
        mode = "r+b" if self.path.exists() else "w+b"
        raw = open(self.path, mode)
        self._file = injector.wrap(raw, "pages") if injector else raw

    # -- persistence -------------------------------------------------------

    @property
    def catalog_path(self) -> Path:
        return self.path.with_name(self.path.name + self.CATALOG_SUFFIX)

    def sync(self) -> None:
        """Flush the page file and write the catalog sidecar."""
        with self._latch:
            self._sync_locked()

    def _sync_locked(self) -> None:
        self.flush_pending()
        fsync_file(self._file)
        payload = {
            "page_size": self.page_size,
            "next_id": self._next_id,
            "high_water": self._allocator.high_water,
            "free": [
                [r.start, r.count] for r in self._allocator.free_ranges()
            ],
            "blobs": [
                {
                    "id": r.blob_id,
                    "size": r.byte_size,
                    "stored_size": r.stored_size,
                    "start": r.pages.start,
                    "count": r.pages.count,
                    "virtual": r.virtual,
                    "codec": r.codec,
                    "crcs": self._page_crcs.get(r.blob_id),
                }
                for r in self._catalog.values()
            ],
        }
        tmp = self.catalog_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.catalog_path)

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        checksums: bool = True,
        injector: Optional[FaultInjector] = None,
    ) -> "FileBlobStore":
        """Reload a previously synced store."""
        path = Path(path)
        catalog_path = path.with_name(path.name + cls.CATALOG_SUFFIX)
        if not catalog_path.exists():
            raise StorageError(f"no catalog at {catalog_path}")
        meta = json.loads(catalog_path.read_text())
        store = cls(
            path,
            page_size=meta["page_size"],
            checksums=checksums,
            injector=injector,
        )
        store._next_id = meta["next_id"]
        store._allocator._next_page = meta["high_water"]
        store._allocator.restore_free_ranges(
            PageRange(start, count) for start, count in meta.get("free", [])
        )
        for entry in meta["blobs"]:
            record = BlobRecord(
                blob_id=entry["id"],
                byte_size=entry["size"],
                pages=PageRange(entry["start"], entry["count"]),
                virtual=entry["virtual"],
                codec=entry["codec"],
                stored_size=entry["stored_size"],
            )
            store._catalog[record.blob_id] = record
            crcs = entry.get("crcs")
            if crcs is not None:
                store._page_crcs[record.blob_id] = list(crcs)
        return store

    def close(self) -> None:
        self.sync()
        self._file.close()

    def __enter__(self) -> "FileBlobStore":
        return self

    def __exit__(self, *exc: object) -> Optional[bool]:
        self.close()
        return None

    # -- backend hooks -------------------------------------------------------

    def _check_overflow(self, record: BlobRecord, payload: bytes) -> None:
        if len(payload) > record.pages.count * self.page_size:
            raise StorageError(
                f"payload of {len(payload)} bytes overflows page range "
                f"{record.pages}"
            )

    def _record_crcs(self, record: BlobRecord, payload: bytes) -> None:
        # Checksums are recorded before the bytes go out: a write torn
        # mid-page then fails verification instead of reading back as
        # silently truncated data.  A caller that already checksummed the
        # payload (the ingest pipeline, which shares one CRC pass with
        # the WAL record) stashes the values; otherwise compute here.
        stashed = self._crc_stash.get(record.blob_id)
        self._page_crcs[record.blob_id] = (
            list(stashed)
            if stashed is not None
            else page_checksums(payload, self.page_size)
        )

    def _write_payload(self, record: BlobRecord, payload: bytes) -> None:
        self._check_overflow(record, payload)
        if self.checksums:
            self._record_crcs(record, payload)
        self._file.seek(record.pages.start * self.page_size)
        self._file.write(payload)
        record.stored_size = len(payload)

    def _write_payload_run(
        self, records: Sequence[BlobRecord], payloads: Sequence[bytes]
    ) -> None:
        """One seek + one write for a run of page-adjacent payloads.

        Interior slack (the unused tail of each blob's last page) is
        padded with zeros — byte-identical to the holes that separate
        per-blob writes on a fresh file — so coalescing never changes
        the page file's contents, only the number of syscalls.
        """
        if len(records) == 1:
            self._write_payload(records[0], payloads[0])
            return
        parts: list[bytes] = []
        last = len(records) - 1
        for i, (record, payload) in enumerate(zip(records, payloads)):
            self._check_overflow(record, payload)
            if self.checksums:
                self._record_crcs(record, payload)
            parts.append(payload)
            slack = record.pages.count * self.page_size - len(payload)
            if i < last and slack:
                parts.append(bytes(slack))
            record.stored_size = len(payload)
        self._file.seek(records[0].pages.start * self.page_size)
        self._file.write(b"".join(parts))

    def _verify(self, record: BlobRecord, raw: bytes) -> None:
        expected = self._page_crcs.get(record.blob_id)
        if self.checksums and expected is not None:
            bad = verify_page_checksums(raw, self.page_size, expected)
            _PAGES_VERIFIED.inc(len(expected))
            if bad:
                _PAGE_FAILURES.inc(len(bad))
                raise ChecksumError(
                    f"blob {record.blob_id}: CRC32C mismatch on page(s) "
                    f"{bad} of {record.pages}"
                )

    def _read_payload(self, record: BlobRecord) -> bytes:
        self._file.seek(record.pages.start * self.page_size)
        stored = record.stored_size
        assert stored is not None
        raw = self._file.read(stored)
        if len(raw) != stored:
            raise StorageError(
                f"short read for blob {record.blob_id}: wanted {stored} "
                f"bytes, got {len(raw)}"
            )
        self._verify(record, raw)
        return raw

    def get_run(self, blob_ids: Sequence[int]) -> list[bytes]:
        """One contiguous read for a run of page-adjacent BLOBs.

        Every blob's pages are verified against the sidecar CRCs in one
        lockstep pass — the same guarantees as per-blob :meth:`get`, in
        a single seek+read syscall.  Falls back to the per-blob loop if
        any blob is virtual or still buffered.
        """
        with self._latch:
            return self._get_run_locked(blob_ids)

    def _get_run_locked(self, blob_ids: Sequence[int]) -> list[bytes]:
        records = [self.record(blob_id) for blob_id in blob_ids]
        if len(records) < 2 or any(
            r.virtual or r.blob_id in self._pending for r in records
        ):
            return super().get_run(blob_ids)
        base = records[0].pages.start * self.page_size
        last = records[-1]
        assert last.stored_size is not None
        span = last.pages.start * self.page_size + last.stored_size - base
        self._file.seek(base)
        buf = self._file.read(span)
        payloads: list[bytes] = []
        for record in records:
            offset = record.pages.start * self.page_size - base
            stored = record.stored_size
            assert stored is not None
            raw = buf[offset : offset + stored]
            if len(raw) != stored:
                raise StorageError(
                    f"short read for blob {record.blob_id}: wanted {stored} "
                    f"bytes, got {len(raw)}"
                )
            payloads.append(raw)
        if self.checksums:
            actual = page_checksums_many(payloads, self.page_size)
            for record, raw, crcs in zip(records, payloads, actual):
                expected = self._page_crcs.get(record.blob_id)
                if expected is None:
                    continue
                _PAGES_VERIFIED.inc(len(expected))
                if crcs != expected:
                    bad = [
                        i for i, (a, e) in enumerate(zip(crcs, expected))
                        if a != e
                    ] or list(range(max(len(crcs), len(expected))))
                    _PAGE_FAILURES.inc(len(bad))
                    raise ChecksumError(
                        f"blob {record.blob_id}: CRC32C mismatch on page(s) "
                        f"{bad} of {record.pages}"
                    )
        return payloads

    def _delete_payload(self, record: BlobRecord) -> None:
        # Pages are recycled by the allocator; bytes stay until overwritten.
        self._page_crcs.pop(record.blob_id, None)
