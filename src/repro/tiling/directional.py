"""Directional tiling: user-specified partitions of the domain axes.

Implements the paper's *Partitioning the Dimensions* strategy (Section
5.2).  The user gives, for some or all axes, a partition in the paper's
notation ``(i, p_i1, ..., p_in)`` with ``p_i1 = l_i`` and ``p_in = u_i``:
consecutive values delimit the categories of that axis (months, product
classes, country districts in the benchmark).  The space is first cut by
the hyperplanes ``x_i = p_ij``; blocks that still exceed ``MaxTileSize``
are sub-split with the aligned tiling algorithm, making the scheme
partially aligned.

The blocks defined by the partitions are *iso-oriented partitions* of the
MDD: any access selecting whole categories reads no byte outside the
queried region.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence, Union

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.tiling.aligned import AlignedTiling, ConfigElement, TileConfig
from repro.tiling.base import DEFAULT_MAX_TILE_SIZE, TilingStrategy

#: Paper notation: axis -> (p_1, ..., p_n) with p_1 = l and p_n = u.
PartitionMap = Mapping[int, Sequence[int]]


def category_intervals(
    boundaries: Sequence[int], lower: int, upper: int
) -> list[tuple[int, int]]:
    """Convert a paper-style boundary list into closed per-category spans.

    ``p_1 = l_i`` opens the first category and every further value closes
    one: ``[1, 27, 42, 60]`` on axis extent ``[1, 60]`` yields the product
    classes ``[(1, 27), (28, 42), (43, 60)]``.  This matches the paper's
    own benchmark, whose queries (``28:42``, ``28:35``, ``182:365``) land
    exactly on category ranges under this reading.  A single-entry list
    (``n_i = 1``) means "no partition" and yields the whole extent.
    """
    values = list(boundaries)
    if not values:
        raise TilingError("empty partition boundary list")
    if len(values) == 1:
        return [(lower, upper)]
    if values != sorted(set(values)):
        raise TilingError(f"boundaries must be strictly increasing: {values}")
    if values[0] != lower or values[-1] != upper:
        raise TilingError(
            f"boundaries must start at {lower} and end at {upper} "
            f"(paper: p_1 = l_i, p_n = u_i), got {values[0]}..{values[-1]}"
        )
    spans: list[tuple[int, int]] = [(values[0], values[1])]
    for i in range(1, len(values) - 1):
        spans.append((values[i] + 1, values[i + 1]))
    return spans


class DirectionalTiling(TilingStrategy):
    """Tiling by partitions along the axes (paper: Directional Tiling).

    Args:
        partitions: mapping from axis index to the paper-style boundary
            list for that axis.  Axes absent from the mapping are not
            partitioned.
        max_tile_size: byte bound on every resulting tile.
        sub_config: tile configuration used when sub-splitting oversized
            blocks with the aligned algorithm (default: equal edges —
            the algorithm's neutral option; [12] discusses alternatives).
        subtiling: when False, oversized blocks are kept whole (used as the
            first phase of areas-of-interest tiling); ``tile()`` then skips
            the size check.
    """

    def __init__(
        self,
        partitions: PartitionMap,
        max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
        sub_config: Union[TileConfig, Sequence[ConfigElement], str, None] = None,
        subtiling: bool = True,
    ) -> None:
        super().__init__(max_tile_size)
        self.partitions = {int(axis): tuple(b) for axis, b in partitions.items()}
        self.subtiling = subtiling
        self._sub = AlignedTiling(sub_config, max_tile_size)

    @property
    def name(self) -> str:
        axes = ",".join(str(a) for a in sorted(self.partitions))
        return f"Directional(axes={axes or '-'},{self.max_tile_size}B)"

    def blocks(self, domain: MInterval) -> list[MInterval]:
        """The iso-oriented blocks cut by the partition hyperplanes only."""
        for axis in self.partitions:
            if not 0 <= axis < domain.dim:
                raise TilingError(
                    f"partition axis {axis} out of range for domain {domain}"
                )
        axis_spans: list[list[tuple[int, int]]] = []
        for axis, (l, u) in enumerate(zip(domain.lowest, domain.highest)):
            boundaries = self.partitions.get(axis)
            if boundaries is None:
                axis_spans.append([(l, u)])
            else:
                axis_spans.append(category_intervals(boundaries, l, u))
        blocks: list[MInterval] = []
        for combo in itertools.product(*axis_spans):
            lo = [span[0] for span in combo]
            hi = [span[1] for span in combo]
            blocks.append(MInterval(lo, hi))
        return blocks

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        tiles: list[MInterval] = []
        for block in self.blocks(domain):
            if (
                not self.subtiling
                or block.cell_count * cell_size <= self.max_tile_size
            ):
                tiles.append(block)
            else:
                tiles.extend(self._sub.partition(block, cell_size))
        return tiles

    def tile(self, domain: MInterval, cell_size: int):
        # Same as the base implementation, but the size check is relaxed
        # when sub-splitting is disabled (phase-one use by areas-of-interest).
        from repro.tiling.base import TilingSpec

        if not domain.is_bounded:
            raise TilingError(f"cannot tile open domain {domain}")
        if cell_size < 1:
            raise TilingError(f"cell_size must be positive, got {cell_size}")
        tiles = self.partition(domain, cell_size)
        spec = TilingSpec(domain, tiles, cell_size, self.max_tile_size)
        return spec.validate(check_size=self.subtiling)
