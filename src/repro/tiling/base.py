"""Tiling framework: strategy interface, tiling specs and grid helpers.

A tiling strategy runs in the two phases the paper describes (Section 5.2):
phase one computes a *tiling specification* — a partition of the spatial
domain into disjoint bounded intervals — from user parameters; phase two
(performed by the storage layer) copies cells together and stores each tile.
This module owns phase one's contract.

All strategies honour ``max_tile_size``: no produced tile exceeds that many
bytes (``MaxTileSize`` in the paper), ensuring tiles remain convenient units
of storage and transfer.
"""

from __future__ import annotations

import abc
import itertools
from typing import Iterable, Iterator, Sequence

from repro.core.errors import TilingError
from repro.core.geometry import MInterval, covers_exactly

#: The paper's benchmark values; any positive byte count is accepted.
DEFAULT_MAX_TILE_SIZE = 128 * 1024

KB = 1024


class TilingSpec:
    """Phase-one output: a validated partition of a domain into tile domains.

    Iterable over its :class:`MInterval` elements; knows how to check the
    partition invariants (disjoint, exact cover, size bound).
    """

    def __init__(
        self,
        domain: MInterval,
        tiles: Sequence[MInterval],
        cell_size: int,
        max_tile_size: int,
    ) -> None:
        self.domain = domain
        self.tiles = tuple(tiles)
        self.cell_size = cell_size
        self.max_tile_size = max_tile_size

    def validate(self, check_size: bool = True) -> "TilingSpec":
        """Raise :class:`TilingError` unless the partition is sound."""
        if not self.tiles:
            raise TilingError(f"empty tiling for domain {self.domain}")
        if not covers_exactly(self.tiles, self.domain):
            raise TilingError(
                f"tiles do not partition {self.domain} exactly "
                f"({len(self.tiles)} tiles)"
            )
        if check_size:
            for tile in self.tiles:
                size = tile.cell_count * self.cell_size
                if size > self.max_tile_size:
                    raise TilingError(
                        f"tile {tile} has {size} bytes, exceeding "
                        f"MaxTileSize {self.max_tile_size}"
                    )
        return self

    @property
    def tile_count(self) -> int:
        return len(self.tiles)

    def tile_bytes(self) -> list[int]:
        """Byte size of each tile."""
        return [t.cell_count * self.cell_size for t in self.tiles]

    def average_tile_bytes(self) -> float:
        sizes = self.tile_bytes()
        return sum(sizes) / len(sizes)

    def __iter__(self) -> Iterator[MInterval]:
        return iter(self.tiles)

    def __len__(self) -> int:
        return len(self.tiles)

    def __repr__(self) -> str:
        return (
            f"TilingSpec({self.domain}, tiles={self.tile_count}, "
            f"max={self.max_tile_size}B)"
        )


class TilingStrategy(abc.ABC):
    """Computes tile partitions for spatial domains.

    Concrete strategies: aligned/regular, single-tile, cuts-along-direction,
    directional, areas-of-interest and statistic tiling.
    """

    def __init__(self, max_tile_size: int = DEFAULT_MAX_TILE_SIZE) -> None:
        if max_tile_size < 1:
            raise TilingError(f"max_tile_size must be positive, got {max_tile_size}")
        self.max_tile_size = max_tile_size

    @property
    def name(self) -> str:
        """Short human-readable strategy name for reports."""
        return type(self).__name__

    @abc.abstractmethod
    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        """Compute the raw tile-domain list for a bounded domain."""

    def tile(self, domain: MInterval, cell_size: int) -> TilingSpec:
        """Compute and validate the tiling specification."""
        if not domain.is_bounded:
            raise TilingError(f"cannot tile open domain {domain}")
        if cell_size < 1:
            raise TilingError(f"cell_size must be positive, got {cell_size}")
        if cell_size > self.max_tile_size:
            raise TilingError(
                f"cell_size {cell_size} exceeds max_tile_size "
                f"{self.max_tile_size}: even one cell does not fit"
            )
        tiles = self.partition(domain, cell_size)
        return TilingSpec(domain, tiles, cell_size, self.max_tile_size).validate()


def grid_partition(
    domain: MInterval, tile_shape: Sequence[int]
) -> list[MInterval]:
    """Chop ``domain`` into an aligned grid of boxes of ``tile_shape``.

    The grid is anchored at the domain's lower corner; border tiles on the
    high side are smaller (the paper's border-tile effect).  Tiles come out
    in row-major order of their lowest vertex.
    """
    if len(tile_shape) != domain.dim:
        raise TilingError(
            f"tile shape of {len(tile_shape)} axes for dim-{domain.dim} domain"
        )
    for axis, edge in enumerate(tile_shape):
        if edge < 1:
            raise TilingError(f"axis {axis}: tile edge must be >= 1, got {edge}")
    axis_ranges: list[list[tuple[int, int]]] = []
    for l, u, edge in zip(domain.lowest, domain.highest, tile_shape):
        spans = [
            (start, min(start + edge - 1, u))
            for start in range(l, u + 1, edge)
        ]
        axis_ranges.append(spans)
    tiles: list[MInterval] = []
    for combo in itertools.product(*axis_ranges):
        lo = [span[0] for span in combo]
        hi = [span[1] for span in combo]
        tiles.append(MInterval(lo, hi))
    return tiles


def blocks_from_axis_breaks(
    domain: MInterval, breaks_per_axis: Sequence[Sequence[int]]
) -> list[MInterval]:
    """Grid a domain using explicit per-axis cut coordinates.

    ``breaks_per_axis[i]`` lists interior hyperplane positions ``c`` cutting
    axis ``i`` between ``c - 1`` and ``c``; bounds of the domain are implied
    and must not be repeated.  Blocks come out in row-major order.
    """
    if len(breaks_per_axis) != domain.dim:
        raise TilingError("one break list per axis required")
    axis_ranges: list[list[tuple[int, int]]] = []
    for axis, (l, u) in enumerate(zip(domain.lowest, domain.highest)):
        cuts = sorted(set(breaks_per_axis[axis]))
        for c in cuts:
            if not l < c <= u:
                raise TilingError(
                    f"axis {axis}: cut {c} outside interior ({l}, {u}]"
                )
        edges = [l, *cuts, u + 1]
        axis_ranges.append(
            [(edges[k], edges[k + 1] - 1) for k in range(len(edges) - 1)]
        )
    blocks: list[MInterval] = []
    for combo in itertools.product(*axis_ranges):
        lo = [span[0] for span in combo]
        hi = [span[1] for span in combo]
        blocks.append(MInterval(lo, hi))
    return blocks


def partition_cells(tiles: Iterable[MInterval], cell_size: int) -> int:
    """Total bytes across a set of tile domains."""
    return sum(t.cell_count for t in tiles) * cell_size
