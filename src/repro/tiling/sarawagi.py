"""Shape-optimal regular chunking — the [13] baseline the paper argues
against.

Sarawagi & Stonebraker ("Efficient Organization of Large Multidimensional
Arrays", ICDE 1994) model an access pattern as a collection of access
*shapes* with occurrence probabilities; the position of an access is
deliberately ignored ("an access is modeled as a rectangle anywhere in
the array").  Their storage optimisation picks the regular chunk format
``(t_1, ..., t_d)`` minimising the expected number of chunks an access
touches,

    E[chunks] = sum_k p_k * prod_i ((a_i^k - 1) / t_i + 1),

subject to the chunk fitting the size budget.  This module implements
that optimisation (a continuous Lagrangian solve seeded into an exact
integer hill-climb) as :class:`OptimalChunkTiling`, giving the very baseline
the paper's Section 7 contrasts arbitrary tiling with: shape-aware but
position-blind.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.query.access import AccessPattern
from repro.tiling.base import (
    DEFAULT_MAX_TILE_SIZE,
    TilingStrategy,
    grid_partition,
)


def expected_chunks(
    shape: Sequence[int], tile_format: Sequence[int]
) -> float:
    """Expected chunks touched by an access of ``shape`` placed uniformly
    at random on a grid of ``tile_format`` chunks ([13]'s cost model)."""
    if len(shape) != len(tile_format):
        raise TilingError("shape and tile format dims differ")
    cost = 1.0
    for extent, edge in zip(shape, tile_format):
        if extent < 1 or edge < 1:
            raise TilingError("extents and edges must be >= 1")
        cost *= (extent - 1) / edge + 1.0
    return cost


def pattern_cost(
    shapes: Sequence[Sequence[int]],
    probabilities: Sequence[float],
    tile_format: Sequence[int],
) -> float:
    """Probability-weighted expected chunks per access."""
    if len(shapes) != len(probabilities):
        raise TilingError("one probability per shape required")
    total = 0.0
    for shape, probability in zip(shapes, probabilities):
        total += probability * expected_chunks(shape, tile_format)
    return total


def optimal_chunk_format(
    domain: MInterval,
    shapes: Sequence[Sequence[int]],
    probabilities: Optional[Sequence[float]] = None,
    cell_size: int = 1,
    max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
) -> tuple[int, ...]:
    """[13]'s optimisation: the chunk format minimising expected chunks
    touched, under the byte budget.

    Integer coordinate descent: sweep the axes repeatedly, each time
    setting one edge to its exact best value given the others, until a
    fixed point.  The objective is separable per axis given the others'
    product, so each sweep step is optimal and the descent terminates.
    """
    dim = domain.dim
    if not shapes:
        raise TilingError("the access pattern needs at least one shape")
    for shape in shapes:
        if len(shape) != dim:
            raise TilingError(
                f"access shape {tuple(shape)} does not match dim {dim}"
            )
    if probabilities is None:
        probabilities = [1.0 / len(shapes)] * len(shapes)
    if any(p <= 0 for p in probabilities):
        raise TilingError("probabilities must be positive")

    budget_cells = max_tile_size // cell_size
    if budget_cells < 1:
        raise TilingError(
            f"MaxTileSize {max_tile_size} holds no cell of {cell_size} bytes"
        )
    extents = domain.shape
    edges = _continuous_seed(extents, shapes, probabilities, budget_cells)
    edges = _refine_integer(
        edges, extents, shapes, probabilities, budget_cells
    )
    total = 1
    for edge in edges:
        total *= edge
    assert total <= budget_cells
    return tuple(edges)


def _continuous_seed(
    extents: Sequence[int],
    shapes: Sequence[Sequence[int]],
    probabilities: Sequence[float],
    budget_cells: int,
) -> list[int]:
    """Continuous relaxation of [13]'s optimisation, solved in log space.

    Minimise ``sum_k p_k prod_i ((a_i^k - 1) e^{-u_i} + 1)`` subject to
    ``sum u_i <= log(budget)`` and ``0 <= u_i <= log(extent_i)``, then
    floor back to integers (refinement fixes the rounding).
    """
    import numpy as np
    from scipy.optimize import minimize

    dim = len(extents)
    log_budget = math.log(budget_cells)
    bounds = [(0.0, math.log(extent)) for extent in extents]

    def objective(u: "np.ndarray") -> float:
        total = 0.0
        for shape, probability in zip(shapes, probabilities):
            term = probability
            for i in range(dim):
                term *= (shape[i] - 1) * math.exp(-u[i]) + 1.0
            total += term
        return total

    # Start from the budget spread evenly over the axes (clamped).
    start = np.minimum(
        [log_budget / dim] * dim, [b[1] for b in bounds]
    )
    result = minimize(
        objective,
        start,
        method="SLSQP",
        bounds=bounds,
        constraints=[{
            "type": "ineq",
            "fun": lambda u: log_budget - float(np.sum(u)),
        }],
    )
    u = result.x if result.success else start
    edges = [max(1, int(math.exp(v))) for v in u]
    # Clamp any budget overshoot introduced by rounding.
    while math.prod(edges) > budget_cells:
        victim = max(range(dim), key=lambda i: edges[i])
        if edges[victim] == 1:
            break
        edges[victim] -= 1
    return edges


def _refine_integer(
    edges: list[int],
    extents: Sequence[int],
    shapes: Sequence[Sequence[int]],
    probabilities: Sequence[float],
    budget_cells: int,
) -> list[int]:
    """Hill-climb on the exact integer objective.

    Moves: grow one axis by one (when the budget allows), shrink one axis
    by one, and pairwise trades (grow axis ``i``, shrink axis ``j`` until
    the product fits).  Terminates at a local optimum of this
    neighbourhood; iterations are bounded for safety.
    """
    dim = len(edges)

    def cost(candidate: Sequence[int]) -> float:
        return pattern_cost(shapes, probabilities, candidate)

    def fits(candidate: Sequence[int]) -> bool:
        return (
            math.prod(candidate) <= budget_cells
            and all(1 <= c <= e for c, e in zip(candidate, extents))
        )

    best = list(edges)
    best_cost = cost(best)
    for _round in range(200):
        improved = False
        candidates: list[list[int]] = []
        for i in range(dim):
            grown = list(best)
            grown[i] += 1
            candidates.append(grown)
            # Grow i as far as the budget allows in one jump.
            room = budget_cells // max(
                1, math.prod(best) // best[i]
            )
            jumped = list(best)
            jumped[i] = min(extents[i], max(1, room))
            candidates.append(jumped)
            shrunk = list(best)
            shrunk[i] -= 1
            candidates.append(shrunk)
            for j in range(dim):
                if i == j:
                    continue
                traded = list(best)
                traded[i] += 1
                while not fits(traded) and traded[j] > 1:
                    traded[j] -= 1
                candidates.append(traded)
        for candidate in candidates:
            if not fits(candidate):
                continue
            candidate_cost = cost(candidate)
            if candidate_cost < best_cost - 1e-12:
                best = candidate
                best_cost = candidate_cost
                improved = True
        if not improved:
            break
    return best


class OptimalChunkTiling(TilingStrategy):
    """Regular chunking with the [13]-optimal format for an access pattern.

    Shape-aware but position-blind: two workloads whose accesses have the
    same shapes but different positions get the same chunking — the
    limitation the paper's arbitrary tiling removes.

    Args:
        pattern: an :class:`~repro.query.access.AccessPattern` (regions
            are reduced to their shapes — positions are *dropped*, exactly
            as [13] models accesses) or an explicit list of shape tuples.
        weights: optional weights for explicit shape lists.
        max_tile_size: byte budget per chunk.
    """

    def __init__(
        self,
        pattern,
        weights: Optional[Sequence[float]] = None,
        max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
    ) -> None:
        super().__init__(max_tile_size)
        if isinstance(pattern, AccessPattern):
            self.shapes = [region.shape for region in pattern.accesses]
            total = sum(pattern.weights)
            self.weights = [w / total for w in pattern.weights]
        else:
            self.shapes = [tuple(shape) for shape in pattern]
            if weights is None:
                weights = [1.0] * len(self.shapes)
            total = sum(weights)
            if total <= 0:
                raise TilingError("weights must sum to a positive value")
            self.weights = [w / total for w in weights]
        if not self.shapes:
            raise TilingError("the access pattern needs at least one shape")

    @property
    def name(self) -> str:
        return f"OptimalChunk(shapes={len(self.shapes)},{self.max_tile_size}B)"

    def chunk_format(self, domain: MInterval, cell_size: int) -> tuple[int, ...]:
        return optimal_chunk_format(
            domain, self.shapes, self.weights, cell_size, self.max_tile_size
        )

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        return grid_partition(domain, self.chunk_format(domain, cell_size))
