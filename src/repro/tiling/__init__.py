"""Tiling strategies (the paper's core contribution, Section 5.2)."""

from repro.tiling.aligned import (
    AlignedTiling,
    RegularTiling,
    SingleTileTiling,
    TileConfig,
    compute_tile_format,
)
from repro.tiling.base import (
    DEFAULT_MAX_TILE_SIZE,
    KB,
    TilingSpec,
    TilingStrategy,
    blocks_from_axis_breaks,
    grid_partition,
)
from repro.tiling.cuts import CutsTiling, LinearBlobTiling
from repro.tiling.directional import (
    DirectionalTiling,
    category_intervals,
)
from repro.tiling.interest import (
    AreasOfInterestTiling,
    axis_partitions_from_areas,
    intersect_code,
    merge_same_code,
)
from repro.tiling.sarawagi import (
    OptimalChunkTiling,
    expected_chunks,
    optimal_chunk_format,
    pattern_cost,
)
from repro.tiling.statistic import (
    AccessCluster,
    StatisticTiling,
    box_distance,
    cluster_accesses,
    derive_areas_of_interest,
)
from repro.tiling.validate import (
    AccessCost,
    access_cost,
    check_partition,
    is_aligned,
    workload_amplification,
)

__all__ = [
    "AccessCluster",
    "AccessCost",
    "AlignedTiling",
    "AreasOfInterestTiling",
    "CutsTiling",
    "DEFAULT_MAX_TILE_SIZE",
    "DirectionalTiling",
    "KB",
    "LinearBlobTiling",
    "OptimalChunkTiling",
    "RegularTiling",
    "SingleTileTiling",
    "StatisticTiling",
    "TileConfig",
    "TilingSpec",
    "TilingStrategy",
    "access_cost",
    "axis_partitions_from_areas",
    "blocks_from_axis_breaks",
    "box_distance",
    "category_intervals",
    "check_partition",
    "cluster_accesses",
    "compute_tile_format",
    "derive_areas_of_interest",
    "expected_chunks",
    "grid_partition",
    "intersect_code",
    "is_aligned",
    "merge_same_code",
    "optimal_chunk_format",
    "pattern_cost",
    "workload_amplification",
]
