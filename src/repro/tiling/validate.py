"""Standalone validators and metrics for tiling specifications.

These helpers quantify how well a tiling fits an access workload — the
quality criteria of Section 2: bytes read beyond the query region, number
of tiles touched, page fill.  Benchmarks and tests use them to explain
*why* one strategy beats another, independent of any timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import TilingError
from repro.core.geometry import MInterval, covers_exactly, pairwise_disjoint


def check_partition(domain: MInterval, tiles: Sequence[MInterval]) -> None:
    """Raise :class:`TilingError` unless ``tiles`` exactly partition
    ``domain`` (disjoint, contained, gap-free)."""
    if not tiles:
        raise TilingError("no tiles")
    if not pairwise_disjoint(list(tiles)):
        raise TilingError("tiles overlap")
    if not covers_exactly(list(tiles), domain):
        raise TilingError(f"tiles do not exactly cover {domain}")


@dataclass(frozen=True)
class AccessCost:
    """Static cost of answering one range query on a given tiling."""

    query: MInterval
    tiles_touched: int
    cells_read: int
    cells_needed: int

    @property
    def cells_wasted(self) -> int:
        """Cells fetched that lie outside the query region."""
        return self.cells_read - self.cells_needed

    @property
    def read_amplification(self) -> float:
        """``cells_read / cells_needed`` — 1.0 is the paper's optimum
        (tiles intersected correspond exactly to the query range)."""
        return self.cells_read / self.cells_needed


def access_cost(
    tiles: Iterable[MInterval], query: MInterval
) -> AccessCost:
    """Static analysis: tiles touched and cells fetched for one query.

    Tiles are the unit of access (Section 2): every intersected tile is
    read in full, so ``cells_read`` sums whole-tile volumes.
    """
    touched = 0
    cells_read = 0
    for tile in tiles:
        if tile.intersects(query):
            touched += 1
            cells_read += tile.cell_count
    if touched == 0:
        raise TilingError(f"query {query} intersects no tile")
    return AccessCost(
        query=query,
        tiles_touched=touched,
        cells_read=cells_read,
        cells_needed=query.cell_count,
    )


def workload_amplification(
    tiles: Sequence[MInterval], queries: Sequence[MInterval]
) -> float:
    """Mean read amplification over a query workload."""
    if not queries:
        raise TilingError("empty workload")
    total = 0.0
    for query in queries:
        total += access_cost(tiles, query).read_amplification
    return total / len(queries)


def is_aligned(tiles: Sequence[MInterval], domain: MInterval) -> bool:
    """True when the tiling is *aligned* in the paper's sense: the tiles are
    exactly the grid induced by full-domain hyperplane cuts.

    Collects each axis' cut positions from all tile bounds and checks that
    the tiles coincide with the resulting grid — so any partially aligned
    or nonaligned scheme returns False.
    """
    check_partition(domain, tiles)
    cuts: list[set[int]] = [set() for _ in range(domain.dim)]
    for tile in tiles:
        for axis in range(domain.dim):
            lo = tile.lower[axis]
            hi = tile.upper[axis]
            assert lo is not None and hi is not None
            if lo > domain.lower[axis]:  # type: ignore[operator]
                cuts[axis].add(lo)
            if hi < domain.upper[axis]:  # type: ignore[operator]
                cuts[axis].add(hi + 1)
    grid_cells = 1
    for axis in range(domain.dim):
        grid_cells *= len(cuts[axis]) + 1
    return grid_cells == len(tiles)
