"""Areas-of-interest tiling — the Figure 6 algorithm of the paper.

An *area of interest* is a frequently accessed sub-interval of the object.
The algorithm guarantees that an access to an area of interest reads only
bytes belonging to that area:

1. ``CalculateDimensionsPartitions`` — collect, per axis, the lower and
   upper coordinates of every area as cut positions;
2. ``DirectionalTiling`` without sub-splitting — grid the domain into
   iso-oriented blocks aligned to every area edge;
3. ``ClassifyTiles`` — compute each block's *IntersectCode*, a bitmask with
   one bit per area (bit j set iff the block intersects area j);
4. ``Merge`` — fuse neighbouring blocks with identical IntersectCodes when
   the union is still a box and fits ``MaxTileSize``;
5. ``AlignedTiling`` — split any block still exceeding ``MaxTileSize``.

Because merging never fuses blocks of different codes and splitting stays
inside a block, no final tile ever spans an area boundary.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.tiling.aligned import AlignedTiling, ConfigElement, TileConfig
from repro.tiling.base import (
    DEFAULT_MAX_TILE_SIZE,
    TilingStrategy,
    blocks_from_axis_breaks,
)


def axis_partitions_from_areas(
    domain: MInterval, areas: Sequence[MInterval]
) -> dict[int, tuple[int, ...]]:
    """Step 1: derive per-axis interior cut coordinates from the area edges.

    Each area contributes the hyperplane just below its lower bound
    (``x_i = a.l_i``) and just past its upper bound (``x_i = a.u_i + 1``),
    so grid blocks never straddle an area edge.  Cuts landing on or
    outside the domain bounds are dropped.  Returned per axis as interior
    cut positions ``c`` splitting between ``c - 1`` and ``c``.
    """
    partitions: dict[int, tuple[int, ...]] = {}
    for axis, (dl, du) in enumerate(zip(domain.lowest, domain.highest)):
        cuts: set[int] = set()
        for area in areas:
            al = area.lower[axis]
            au = area.upper[axis]
            assert al is not None and au is not None
            if dl < al <= du:
                cuts.add(al)
            if dl < au + 1 <= du:
                cuts.add(au + 1)
        partitions[axis] = tuple(sorted(cuts))
    return partitions


def intersect_code(block: MInterval, areas: Sequence[MInterval]) -> int:
    """Step 3: bitmask with bit j set iff ``block`` intersects ``areas[j]``."""
    code = 0
    for j, area in enumerate(areas):
        if block.intersects(area):
            code |= 1 << j
    return code


def merge_same_code(
    blocks: list[MInterval],
    codes: list[int],
    cell_size: int,
    max_tile_size: int,
) -> tuple[list[MInterval], list[int]]:
    """Step 4: fuse box-adjacent blocks with equal IntersectCodes.

    Sweeps axis by axis; two blocks merge when they share the code, agree
    on every other axis (so the union is a box) and the union still fits
    ``max_tile_size``.  Sweeping repeats until a fixed point, so merges
    enabled by earlier merges are found.
    """
    merged = True
    while merged:
        merged = False
        for axis in range(blocks[0].dim):
            order = sorted(
                range(len(blocks)),
                key=lambda k: (
                    codes[k],
                    tuple(
                        bound
                        for ax in range(blocks[k].dim)
                        if ax != axis
                        for bound in (blocks[k].lower[ax], blocks[k].upper[ax])
                    ),
                    blocks[k].lower[axis],
                ),
            )
            new_blocks: list[MInterval] = []
            new_codes: list[int] = []
            for idx in order:
                block, code = blocks[idx], codes[idx]
                if new_blocks:
                    prev = new_blocks[-1]
                    fits = (
                        new_codes[-1] == code
                        and prev.is_adjacent(block, axis)
                        and (prev.cell_count + block.cell_count) * cell_size
                        <= max_tile_size
                    )
                    if fits:
                        new_blocks[-1] = prev.hull(block)
                        merged = True
                        continue
                new_blocks.append(block)
                new_codes.append(code)
            blocks, codes = new_blocks, new_codes
    return blocks, codes


class AreasOfInterestTiling(TilingStrategy):
    """Tiling tuned to a set of frequently accessed areas (paper Fig. 6)."""

    def __init__(
        self,
        areas: Sequence[MInterval],
        max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
        sub_config: Union[TileConfig, Sequence[ConfigElement], str, None] = None,
    ) -> None:
        super().__init__(max_tile_size)
        if not areas:
            raise TilingError("areas-of-interest tiling needs at least one area")
        for area in areas:
            if not area.is_bounded:
                raise TilingError(f"area of interest must be bounded: {area}")
        self.areas = tuple(areas)
        self._sub = AlignedTiling(sub_config, max_tile_size)

    @property
    def name(self) -> str:
        return f"AreasOfInterest(n={len(self.areas)},{self.max_tile_size}B)"

    def _check_areas(self, domain: MInterval) -> None:
        for area in self.areas:
            if area.dim != domain.dim:
                raise TilingError(
                    f"area {area} has dim {area.dim}, domain has {domain.dim}"
                )
            if not domain.contains(area):
                raise TilingError(f"area {area} escapes domain {domain}")

    def classified_blocks(
        self, domain: MInterval, cell_size: int
    ) -> tuple[list[MInterval], list[int]]:
        """Steps 1-4: merged blocks and their IntersectCodes (for tests
        and for the statistic strategy's introspection)."""
        self._check_areas(domain)
        partitions = axis_partitions_from_areas(domain, self.areas)
        breaks = [partitions[axis] for axis in range(domain.dim)]
        grid = blocks_from_axis_breaks(domain, breaks)
        codes = [intersect_code(block, self.areas) for block in grid]
        return merge_same_code(grid, codes, cell_size, self.max_tile_size)

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        blocks, _codes = self.classified_blocks(domain, cell_size)
        tiles: list[MInterval] = []
        for block in blocks:
            if block.cell_count * cell_size <= self.max_tile_size:
                tiles.append(block)
            else:
                tiles.extend(self._sub.partition(block, cell_size))
        return tiles
