"""Tiling by cuts along a direction, and BLOB-style linear tiling.

Section 4 of the paper singles out *tiling by cuts along a direction k*:
tiles are slabs delimited by planes of constant ``x_k``, extending fully
along every other axis.  This generalises the linear tiling of BLOBs — but
along any chosen direction, not just the storage linearisation order.

Figure 4's animation example (frame-by-frame access along y) is
``CutsTiling(axis=1)`` on a ``(x, y, z)`` object.
"""

from __future__ import annotations

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.tiling.aligned import AlignedTiling, TileConfig
from repro.tiling.base import DEFAULT_MAX_TILE_SIZE, TilingStrategy


class CutsTiling(TilingStrategy):
    """Slab tiling orthogonal to one axis (paper: tiling by cuts).

    Equivalent to aligned tiling with configuration ``*`` on every axis
    except ``axis``, which gets relative size 1 — slabs are made as thick
    as ``MaxTileSize`` allows.  When even a single-slice slab exceeds the
    bound, the slice is sub-split by aligned tiling so the size contract
    still holds.
    """

    def __init__(
        self, axis: int, max_tile_size: int = DEFAULT_MAX_TILE_SIZE
    ) -> None:
        super().__init__(max_tile_size)
        if axis < 0:
            raise TilingError(f"axis must be non-negative, got {axis}")
        self.axis = axis

    @property
    def name(self) -> str:
        return f"Cuts(axis={self.axis},{self.max_tile_size}B)"

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        if self.axis >= domain.dim:
            raise TilingError(
                f"cut axis {self.axis} out of range for domain {domain}"
            )
        elements: list[object] = ["*"] * domain.dim
        elements[self.axis] = 1
        aligned = AlignedTiling(TileConfig(elements), self.max_tile_size)
        return aligned.partition(domain, cell_size)


class LinearBlobTiling(CutsTiling):
    """Traditional DBMS BLOB tiling: cuts along the first (slowest) axis.

    Kept as a named strategy because the paper repeatedly contrasts
    arbitrary tiling with the one-directional linear BLOB layout.
    """

    def __init__(self, max_tile_size: int = DEFAULT_MAX_TILE_SIZE) -> None:
        super().__init__(0, max_tile_size)

    @property
    def name(self) -> str:
        return f"LinearBlob({self.max_tile_size}B)"
