"""Aligned tiling: regular grids shaped by a tile configuration.

Implements the paper's *Aligned Tiling* strategy (Section 5.2).  The user
supplies a tile configuration ``(r_1, ..., r_d)`` of relative edge sizes;
the algorithm stretches it by a common factor ``f`` so tiles optimally fill
``MaxTileSize``:

    f = (MaxTileSize / (CellSize * r_1 * ... * r_d)) ** (1/d)
    t_i = floor(f * r_i)

A configuration element may be ``*`` ("infinite"), marking a preferential
scan direction: tile edges are maximised along starred axes first, highest
axis index first, consuming the size budget before any finite axis gets
more than length 1.  ``[*, 1, *]`` reproduces Figure 4's frame-wise access
tiling for the middle axis.

``RegularTiling`` (all-ones configuration, i.e. cubic tiles) is the
baseline the paper compares against; ``SingleTileTiling`` stores the whole
object as one tile.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.tiling.base import (
    DEFAULT_MAX_TILE_SIZE,
    TilingSpec,
    TilingStrategy,
    grid_partition,
)

ConfigElement = Union[int, float, None, str]


class TileConfig:
    """A tile configuration ``(r_1, ..., r_d)``.

    Elements are positive relative sizes, or ``"*"``/``None`` for an
    unbounded preferential scan direction.  Parses the paper's bracket
    notation:

    >>> TileConfig.parse("[*,1,*]").starred
    (0, 2)
    """

    def __init__(self, elements: Sequence[ConfigElement]) -> None:
        if not elements:
            raise TilingError("tile configuration needs at least one axis")
        normalised: list[Optional[float]] = []
        for axis, element in enumerate(elements):
            if element is None or element == "*":
                normalised.append(None)
                continue
            value = float(element)
            if value <= 0:
                raise TilingError(
                    f"axis {axis}: relative size must be > 0, got {element!r}"
                )
            normalised.append(value)
        self.elements: tuple[Optional[float], ...] = tuple(normalised)

    @classmethod
    def parse(cls, text: str) -> "TileConfig":
        """Parse ``"[*,1,2]"`` or ``"*,1,2"``."""
        body = text.strip()
        if body.startswith("[") and body.endswith("]"):
            body = body[1:-1]
        if not body.strip():
            raise TilingError(f"empty tile configuration: {text!r}")
        return cls([part.strip() for part in body.split(",")])

    @classmethod
    def equal(cls, dim: int) -> "TileConfig":
        """The all-ones configuration producing cubic tiles."""
        if dim < 1:
            raise TilingError("dimension must be >= 1")
        return cls([1] * dim)

    @property
    def dim(self) -> int:
        return len(self.elements)

    @property
    def starred(self) -> tuple[int, ...]:
        """Axes marked ``*`` (preferential scan directions)."""
        return tuple(i for i, e in enumerate(self.elements) if e is None)

    @property
    def finite(self) -> tuple[int, ...]:
        """Axes with finite relative sizes."""
        return tuple(i for i, e in enumerate(self.elements) if e is not None)

    def __str__(self) -> str:
        return "[" + ",".join(
            "*" if e is None else f"{e:g}" for e in self.elements
        ) + "]"

    def __repr__(self) -> str:
        return f"TileConfig({str(self)!r})"


def _grow_axes(
    lengths: list[int],
    axes: Sequence[int],
    extents: Sequence[int],
    budget_cells: int,
) -> None:
    """Greedily bump edge lengths (in place) while the cell budget allows.

    Keeps the format as close to the requested ratios as floor() allows
    while "optimally filling MaxTileSize".  Axes are tried round-robin in
    the given order; growth stops when no axis can grow.
    """

    def cells() -> int:
        product = 1
        for length in lengths:
            product *= length
        return product

    grew = True
    while grew:
        grew = False
        for axis in axes:
            if lengths[axis] >= extents[axis]:
                continue
            if cells() // lengths[axis] * (lengths[axis] + 1) <= budget_cells:
                lengths[axis] += 1
                grew = True


def compute_tile_format(
    domain: MInterval,
    config: TileConfig,
    cell_size: int,
    max_tile_size: int,
) -> tuple[int, ...]:
    """Turn a tile configuration into a concrete tile format ``(t_1..t_d)``.

    Follows Section 5.2: finite axes share a common stretch factor ``f``;
    starred axes are maximised first, highest axis index first.  Every edge
    is clamped to the domain extent and the resulting tile never exceeds
    ``max_tile_size`` bytes.
    """
    if config.dim != domain.dim:
        raise TilingError(
            f"configuration {config} has dim {config.dim}, domain "
            f"{domain} has dim {domain.dim}"
        )
    extents = domain.shape
    budget_cells = max_tile_size // cell_size
    if budget_cells < 1:
        raise TilingError(
            f"MaxTileSize {max_tile_size} holds no cell of {cell_size} bytes"
        )
    lengths = [1] * domain.dim

    # Starred axes first: maximise along the highest axis index, then the
    # next, until the budget is gone (paper: cells with consecutive
    # coordinates along d_k group first).
    remaining = budget_cells
    for axis in sorted(config.starred, reverse=True):
        edge = min(extents[axis], remaining)
        lengths[axis] = max(1, edge)
        remaining //= lengths[axis]

    finite_axes = list(config.finite)
    if finite_axes and remaining > 1:
        ratios = [config.elements[axis] for axis in finite_axes]
        product = 1.0
        for ratio in ratios:
            product *= ratio  # type: ignore[operator]
        f = (remaining / product) ** (1.0 / len(finite_axes))
        for axis, ratio in zip(finite_axes, ratios):
            stretched = int(f * ratio)  # type: ignore[operator]
            lengths[axis] = max(1, min(extents[axis], stretched))

    # Lifting floor()=0 lengths to 1 can push the product past the budget
    # (e.g. a near-degenerate axis); shed the excess from the longest axes.
    def cells() -> int:
        product = 1
        for length in lengths:
            product *= length
        return product

    while cells() > budget_cells:
        candidates = [ax for ax in range(domain.dim) if lengths[ax] > 1]
        assert candidates, "budget holds at least one cell"
        victim = max(candidates, key=lambda ax: (lengths[ax], ax))
        lengths[victim] -= 1

    # floor() and extent clamping leave slack; fill it greedily so tiles
    # "optimally fill MaxTileSize".  Finite axes grow in descending ratio
    # order for determinism; starred axes were already maximised.
    if finite_axes:
        grow_order = sorted(
            finite_axes, key=lambda ax: (-(config.elements[ax] or 0), ax)
        )
        _grow_axes(lengths, grow_order, extents, budget_cells)

    if cells() * cell_size > max_tile_size:
        raise TilingError(
            f"internal error: format {lengths} exceeds MaxTileSize"
        )
    return tuple(lengths)


class AlignedTiling(TilingStrategy):
    """Grid tiling shaped by a :class:`TileConfig` (paper: Aligned Tiling)."""

    def __init__(
        self,
        config: Union[TileConfig, Sequence[ConfigElement], str, None] = None,
        max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
    ) -> None:
        super().__init__(max_tile_size)
        if config is None:
            self._config: Optional[TileConfig] = None
        elif isinstance(config, TileConfig):
            self._config = config
        elif isinstance(config, str):
            self._config = TileConfig.parse(config)
        else:
            self._config = TileConfig(config)

    @property
    def name(self) -> str:
        config = "default" if self._config is None else str(self._config)
        return f"Aligned({config},{self.max_tile_size}B)"

    def config_for(self, domain: MInterval) -> TileConfig:
        """The effective configuration.

        With no explicit configuration the tile format follows the
        domain's own edge ratios (RasDaMan's default tiling): the grid has
        roughly the same number of cuts on every axis, so tiles look like
        shrunken copies of the domain box.
        """
        if self._config is None:
            return TileConfig(domain.shape)
        return self._config

    def tile_format(self, domain: MInterval, cell_size: int) -> tuple[int, ...]:
        """The concrete tile format used for ``domain``."""
        return compute_tile_format(
            domain, self.config_for(domain), cell_size, self.max_tile_size
        )

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        return grid_partition(domain, self.tile_format(domain, cell_size))


class RegularTiling(AlignedTiling):
    """The baseline of Section 6: a regular grid filling ``MaxTileSize``.

    The paper obtained its regular schemes "using our aligned tiling
    strategy" with no tuned configuration, i.e. the default
    domain-proportional format.  Pass an explicit all-ones configuration
    to :class:`AlignedTiling` for cubic chunks instead.
    """

    def __init__(self, max_tile_size: int = DEFAULT_MAX_TILE_SIZE) -> None:
        super().__init__(None, max_tile_size)

    @property
    def name(self) -> str:
        return f"Regular({self.max_tile_size}B)"


class SingleTileTiling(TilingStrategy):
    """Store the whole object as one tile — for small, whole-read objects.

    The size bound is deliberately not enforced (a single tile is the
    user's explicit choice); :meth:`tile` validates cover only.
    """

    @property
    def name(self) -> str:
        return "SingleTile"

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        return [domain]

    def tile(self, domain: MInterval, cell_size: int) -> TilingSpec:
        if not domain.is_bounded:
            raise TilingError(f"cannot tile open domain {domain}")
        spec = TilingSpec(
            domain, [domain], cell_size,
            max(self.max_tile_size, domain.cell_count * cell_size),
        )
        return spec.validate()
