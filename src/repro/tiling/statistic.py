"""Statistic tiling: derive areas of interest from an access log.

Implements the paper's fourth strategy (Section 5.2, *Statistic Tiling*):
given a list of past accesses — from an application or database log — the
algorithm

1. clusters accesses closer than ``DistanceThreshold`` into candidate
   areas (merging an access into a cluster grows the cluster's hull and
   its hit count);
2. keeps only clusters hit more than ``FrequencyThreshold`` times,
   avoiding tiny tiles for one-off accesses;
3. hands the surviving areas to the areas-of-interest algorithm.

When no cluster survives the frequency filter the strategy degrades to the
default aligned tiling, matching the system's default behaviour for
objects without tuning information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import TilingError
from repro.core.geometry import MInterval
from repro.tiling.aligned import AlignedTiling
from repro.tiling.base import DEFAULT_MAX_TILE_SIZE, TilingStrategy
from repro.tiling.interest import AreasOfInterestTiling


def box_distance(a: MInterval, b: MInterval) -> int:
    """Chebyshev gap between two bounded boxes (0 when they touch/overlap).

    The maximum over axes of the empty space between the projections; two
    accesses are "close" when every axis gap is small.
    """
    gap = 0
    for al, au, bl, bu in zip(a.lower, a.upper, b.lower, b.upper):
        assert al is not None and au is not None
        assert bl is not None and bu is not None
        if au < bl:
            axis_gap = bl - au - 1
        elif bu < al:
            axis_gap = al - bu - 1
        else:
            axis_gap = 0
        gap = max(gap, axis_gap)
    return gap


@dataclass
class AccessCluster:
    """A group of nearby accesses: covering hull plus hit count."""

    hull: MInterval
    count: int = 1

    def absorb(self, access: MInterval) -> None:
        self.hull = self.hull.hull(access)
        self.count += 1


def cluster_accesses(
    accesses: Sequence[MInterval],
    distance_threshold: int,
) -> list[AccessCluster]:
    """Greedy clustering: each access joins the first cluster within
    ``distance_threshold`` (by :func:`box_distance` to the cluster hull),
    else founds a new one.  Deterministic in input order."""
    clusters: list[AccessCluster] = []
    for access in accesses:
        if not access.is_bounded:
            raise TilingError(f"access log entries must be bounded: {access}")
        for cluster in clusters:
            if box_distance(cluster.hull, access) <= distance_threshold:
                cluster.absorb(access)
                break
        else:
            clusters.append(AccessCluster(access))
    return clusters


def derive_areas_of_interest(
    accesses: Sequence[MInterval],
    frequency_threshold: int,
    distance_threshold: int,
) -> list[MInterval]:
    """The filtering step of statistic tiling: clusters that were hit more
    than ``frequency_threshold`` times become areas of interest."""
    clusters = cluster_accesses(accesses, distance_threshold)
    return [c.hull for c in clusters if c.count >= frequency_threshold]


class StatisticTiling(TilingStrategy):
    """Automatic tiling from access statistics (paper: Statistic Tiling).

    Args:
        accesses: logged access regions (most recent log window).
        frequency_threshold: minimum hits for a cluster to count.
        distance_threshold: maximum box gap for two accesses to merge.
        max_tile_size: byte bound on every resulting tile.
    """

    def __init__(
        self,
        accesses: Sequence[MInterval],
        frequency_threshold: int = 2,
        distance_threshold: int = 0,
        max_tile_size: int = DEFAULT_MAX_TILE_SIZE,
    ) -> None:
        super().__init__(max_tile_size)
        if frequency_threshold < 1:
            raise TilingError(
                f"frequency_threshold must be >= 1, got {frequency_threshold}"
            )
        if distance_threshold < 0:
            raise TilingError(
                f"distance_threshold must be >= 0, got {distance_threshold}"
            )
        self.accesses = tuple(accesses)
        self.frequency_threshold = frequency_threshold
        self.distance_threshold = distance_threshold

    @property
    def name(self) -> str:
        return (
            f"Statistic(n={len(self.accesses)},f>={self.frequency_threshold},"
            f"d<={self.distance_threshold},{self.max_tile_size}B)"
        )

    def areas_of_interest(self, domain: MInterval) -> list[MInterval]:
        """The derived areas, clipped to the domain."""
        areas = derive_areas_of_interest(
            self.accesses, self.frequency_threshold, self.distance_threshold
        )
        clipped: list[MInterval] = []
        for area in areas:
            part: Optional[MInterval] = area.intersection(domain)
            if part is not None:
                clipped.append(part)
        return clipped

    def partition(self, domain: MInterval, cell_size: int) -> list[MInterval]:
        areas = self.areas_of_interest(domain)
        if not areas:
            fallback = AlignedTiling(None, self.max_tile_size)
            return fallback.partition(domain, cell_size)
        inner = AreasOfInterestTiling(areas, self.max_tile_size)
        return inner.partition(domain, cell_size)
