"""repro — storage of multidimensional arrays based on arbitrary tiling.

A full reproduction of Furtado & Baumann (ICDE 1999): the RasDaMan-style
storage manager for multidimensional discrete data (MDD), including

* the MDD model (typed cells, open definition domains, current domains,
  partial coverage),
* arbitrary tiling with four tunable strategies (aligned, directional,
  areas-of-interest, statistic),
* a page-based BLOB store with a deterministic disk timing model,
* an R+-tree-like spatial index on tiles,
* a query engine with the paper's ``t_ix`` / ``t_o`` / ``t_cpu`` timing
  breakdown and a mini-RasQL front end.

Quickstart::

    import numpy as np
    from repro import Database, mdd_type, DirectionalTiling, MInterval

    db = Database()
    cube_type = mdd_type("SalesCube", "ulong", "[1:730,1:60,1:100]")
    cube = db.create_object("cubes", cube_type, "sales")
    cube.load_array(
        np.random.randint(0, 50, (730, 60, 100), dtype=np.uint32),
        DirectionalTiling({1: (1, 27, 42, 60)}, max_tile_size=64 * 1024),
        origin=(1, 1, 1),
    )
    data, timing = cube.read(MInterval.parse("[32:59,*:*,28:35]"))
    print(timing.t_totalcpu, "ms")
"""

from repro.core import (
    BaseType,
    MDDObject,
    MDDType,
    MInterval,
    OPEN,
    ReproError,
    Tile,
    base_type,
    mdd_type,
)
from repro.index import DirectoryIndex, IndexEntry, RPlusTreeIndex, SpatialIndex
from repro.query import (
    AccessKind,
    AccessPattern,
    QueryEngine,
    QueryResult,
    QueryTiming,
    classify,
    execute,
    speedup,
)
from repro.stats import AccessLog, advise
from repro.storage import (
    Database,
    DiskParameters,
    FileBlobStore,
    MemoryBlobStore,
    StoredMDD,
    open_database,
    save_database,
)
from repro.tiling import (
    AlignedTiling,
    AreasOfInterestTiling,
    CutsTiling,
    DirectionalTiling,
    RegularTiling,
    SingleTileTiling,
    StatisticTiling,
    TileConfig,
    TilingSpec,
    TilingStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "AccessLog",
    "AccessPattern",
    "AlignedTiling",
    "AreasOfInterestTiling",
    "BaseType",
    "CutsTiling",
    "Database",
    "DirectionalTiling",
    "DirectoryIndex",
    "DiskParameters",
    "FileBlobStore",
    "IndexEntry",
    "MDDObject",
    "MDDType",
    "MInterval",
    "MemoryBlobStore",
    "OPEN",
    "QueryEngine",
    "QueryResult",
    "QueryTiming",
    "RPlusTreeIndex",
    "RegularTiling",
    "ReproError",
    "SingleTileTiling",
    "SpatialIndex",
    "StatisticTiling",
    "StoredMDD",
    "Tile",
    "TileConfig",
    "TilingSpec",
    "TilingStrategy",
    "advise",
    "base_type",
    "classify",
    "execute",
    "mdd_type",
    "open_database",
    "save_database",
    "speedup",
]
