"""Cell base types of the MDD typing system.

An MDD object stores cells of one fixed *base type* (paper Section 3).  The
base type fixes the cell size in bytes, which the tiling algorithms need to
convert between tile extents and tile byte sizes.  Base types map onto numpy
dtypes so that tiles are plain ndarrays.

The registry mirrors the atomic types of the ODMG/RasLib binding used by
RasDaMan, plus the 3-byte RGB struct used in the paper's animation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.errors import TypeSystemError


@dataclass(frozen=True)
class BaseType:
    """An atomic (or small-struct) cell type.

    Attributes:
        name: registry name, e.g. ``"ulong"``.
        dtype: numpy dtype used for in-memory tiles.
        default: default cell value for uncovered areas (paper Section 4).
    """

    name: str
    dtype: np.dtype
    default: object = 0

    @property
    def size(self) -> int:
        """Cell size in bytes (the ``CellSize`` of the tiling formulas)."""
        return int(self.dtype.itemsize)

    def default_cell(self) -> np.ndarray:
        """A 0-d array holding the default value, usable in ndarray fills."""
        cell = np.zeros((), dtype=self.dtype)
        if self.default != 0:
            cell[()] = self.default
        return cell

    def __str__(self) -> str:
        return self.name


_RGB_DTYPE = np.dtype([("r", "u1"), ("g", "u1"), ("b", "u1")])

_REGISTRY: Dict[str, BaseType] = {}


def register_base_type(base: BaseType) -> BaseType:
    """Add a base type to the global registry (idempotent per name)."""
    existing = _REGISTRY.get(base.name)
    if existing is not None and existing.dtype != base.dtype:
        raise TypeSystemError(
            f"base type {base.name!r} already registered with dtype "
            f"{existing.dtype}, refusing {base.dtype}"
        )
    _REGISTRY[base.name] = base
    return base


def base_type(name: str) -> BaseType:
    """Look up a registered base type by name.

    >>> base_type("char").size
    1
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TypeSystemError(
            f"unknown base type {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_base_types() -> tuple[str, ...]:
    """Names of all registered base types."""
    return tuple(sorted(_REGISTRY))


# The RasLib-style atomic types.
BOOL = register_base_type(BaseType("bool", np.dtype(np.bool_), False))
CHAR = register_base_type(BaseType("char", np.dtype(np.uint8)))
OCTET = register_base_type(BaseType("octet", np.dtype(np.int8)))
SHORT = register_base_type(BaseType("short", np.dtype(np.int16)))
USHORT = register_base_type(BaseType("ushort", np.dtype(np.uint16)))
LONG = register_base_type(BaseType("long", np.dtype(np.int32)))
ULONG = register_base_type(BaseType("ulong", np.dtype(np.uint32)))
FLOAT = register_base_type(BaseType("float", np.dtype(np.float32)))
DOUBLE = register_base_type(BaseType("double", np.dtype(np.float64)))
#: 3-byte RGB struct — the cell type of the paper's animation MDD (Table 5).
RGB = register_base_type(BaseType("rgb", _RGB_DTYPE))
