"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything coming from this package with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GeometryError(ReproError):
    """Invalid geometric construction or operation (bad bounds, dim mismatch)."""


class DimensionMismatchError(GeometryError):
    """Two geometric entities of different dimensionality were combined."""


class OpenBoundError(GeometryError):
    """An operation requiring fixed bounds was applied to an open interval."""


class DomainError(ReproError):
    """A spatial-domain constraint was violated (e.g. tile outside domain)."""


class TilingError(ReproError):
    """A tiling strategy received invalid parameters or produced an
    inconsistent tiling (overlap, domain escape)."""


class StorageError(ReproError):
    """Failure in the page/BLOB storage layer."""


class BlobNotFoundError(StorageError):
    """A BLOB id was requested that the store does not contain."""


class PageError(StorageError):
    """Invalid page id or page-level corruption."""


class ChecksumError(PageError):
    """Stored bytes do not match their recorded CRC32C checksum."""


class WalError(StorageError):
    """Invalid write-ahead-log usage or unrecoverable log corruption."""


class RecoveryError(StorageError):
    """Crash recovery could not reconcile the log with the checkpoint."""


class IndexError_(ReproError):
    """Failure in the spatial index layer.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """A query was malformed or touched an invalid region."""


class RasQLSyntaxError(QueryError):
    """The mini-RasQL parser rejected the statement."""


class TypeSystemError(ReproError):
    """Invalid MDD type construction (unknown base type, bad domain)."""
