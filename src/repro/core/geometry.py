"""Geometry kernel: points and multidimensional intervals.

This module implements the spatial vocabulary of the paper (Section 3):

* points in ``Z^d`` with the row-major (*lower-than*) total order;
* ``MInterval`` — a closed multidimensional interval
  ``[l_1:u_1, ..., l_d:u_d]``, the shape of spatial domains, tiles and
  query regions;
* open ("unlimited") bounds written ``*`` in the paper, used by definition
  domains such as ``[0:*, 0:1023]``.

Every interval is immutable; all algebra (intersection, hull, difference,
splitting) returns new objects.  Tiles and query regions must be fully
bounded; definition domains may be open along any axis.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.core.errors import (
    DimensionMismatchError,
    GeometryError,
    OpenBoundError,
)

#: Sentinel used in constructor arguments for an unlimited bound (paper: ``*``).
OPEN = None

Point = Tuple[int, ...]

_INTERVAL_RE = re.compile(r"^\s*\[(.*)\]\s*$")


def point_lower_than(x: Sequence[int], y: Sequence[int]) -> bool:
    """Return True if ``x < y`` in the paper's *lower-than* order.

    The order is lexicographic on coordinates, which coincides with C
    row-major array order (Section 3): ``x < y`` iff at the first differing
    axis ``k``, ``x_k < y_k``.
    """
    if len(x) != len(y):
        raise DimensionMismatchError(
            f"cannot order points of dims {len(x)} and {len(y)}"
        )
    return tuple(x) < tuple(y)


def _check_axis(value: object, name: str) -> Optional[int]:
    """Validate one bound value: an int or OPEN (None)."""
    if value is OPEN:
        return None
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise GeometryError(f"{name} bound must be int or OPEN, got {value!r}")
    return int(value)


class MInterval:
    """A closed multidimensional interval ``[l_1:u_1, ..., l_d:u_d]``.

    Bounds are inclusive on both ends, matching the paper's notation: the
    interval ``[0:9]`` contains ten points.  A bound may be *open*
    (``MInterval.OPEN`` / ``None``), rendering as ``*``; open intervals are
    only legal as definition domains and query templates, never as tiles.

    Instances are immutable, hashable and usable as dict keys.
    """

    OPEN = OPEN

    __slots__ = ("_lo", "_hi")

    def __init__(
        self,
        lower: Sequence[Optional[int]],
        upper: Sequence[Optional[int]],
    ) -> None:
        if len(lower) != len(upper):
            raise DimensionMismatchError(
                f"lower has {len(lower)} axes, upper has {len(upper)}"
            )
        if not lower:
            raise GeometryError("an interval needs at least one axis")
        lo = tuple(_check_axis(v, "lower") for v in lower)
        hi = tuple(_check_axis(v, "upper") for v in upper)
        for axis, (l, u) in enumerate(zip(lo, hi)):
            if l is not None and u is not None and l > u:
                raise GeometryError(
                    f"axis {axis}: lower bound {l} exceeds upper bound {u}"
                )
        self._lo = lo
        self._hi = hi

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *bounds: Tuple[Optional[int], Optional[int]]) -> "MInterval":
        """Build from per-axis ``(lower, upper)`` pairs.

        >>> MInterval.of((0, 9), (10, 19))
        MInterval('[0:9,10:19]')
        """
        if not bounds:
            raise GeometryError("MInterval.of needs at least one axis")
        lo = [b[0] for b in bounds]
        hi = [b[1] for b in bounds]
        return cls(lo, hi)

    @classmethod
    def from_shape(
        cls, shape: Sequence[int], origin: Optional[Sequence[int]] = None
    ) -> "MInterval":
        """Build a box of the given extents anchored at ``origin`` (default 0).

        >>> MInterval.from_shape((3, 4))
        MInterval('[0:2,0:3]')
        """
        if origin is None:
            origin = [0] * len(shape)
        if len(origin) != len(shape):
            raise DimensionMismatchError("origin and shape dims differ")
        for axis, extent in enumerate(shape):
            if extent < 1:
                raise GeometryError(f"axis {axis}: extent must be >= 1")
        lo = list(origin)
        hi = [o + e - 1 for o, e in zip(origin, shape)]
        return cls(lo, hi)

    @classmethod
    def parse(cls, text: str) -> "MInterval":
        """Parse the paper's bracket notation, e.g. ``"[32:59,*:*,28:35]"``.

        ``*`` denotes an open bound on that side.
        """
        match = _INTERVAL_RE.match(text)
        if match is None:
            raise GeometryError(f"not an interval literal: {text!r}")
        body = match.group(1).strip()
        if not body:
            raise GeometryError("empty interval literal")
        lo: list[Optional[int]] = []
        hi: list[Optional[int]] = []
        for part in body.split(","):
            pieces = part.split(":")
            if len(pieces) != 2:
                raise GeometryError(f"bad axis spec {part!r} in {text!r}")
            raw_l, raw_u = (p.strip() for p in pieces)
            lo.append(None if raw_l == "*" else int(raw_l))
            hi.append(None if raw_u == "*" else int(raw_u))
        return cls(lo, hi)

    @classmethod
    def hull_of(cls, intervals: Iterable["MInterval"]) -> "MInterval":
        """Minimal bounded interval covering all inputs (closure operation).

        Folds in a single pass over mutable bound lists instead of
        materialising one intermediate interval per step — this sits on
        the index's MBR-maintenance hot path.  Raises
        :class:`GeometryError` on an empty iterable.
        """
        lo: Optional[list[Optional[int]]] = None
        hi: list[Optional[int]] = []
        dim = 0
        for iv in intervals:
            if lo is None:
                lo, hi = list(iv._lo), list(iv._hi)
                dim = iv.dim
                continue
            if iv.dim != dim:
                raise DimensionMismatchError(
                    f"cannot hull intervals of dims {dim} and {iv.dim}"
                )
            for axis in range(dim):
                l, u = iv._lo[axis], iv._hi[axis]
                cl, cu = lo[axis], hi[axis]
                lo[axis] = None if l is None or cl is None else min(l, cl)
                hi[axis] = None if u is None or cu is None else max(u, cu)
        if lo is None:
            raise GeometryError("hull_of needs at least one interval")
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of axes (the paper's dimensionality ``d``)."""
        return len(self._lo)

    @property
    def lower(self) -> Tuple[Optional[int], ...]:
        """Per-axis lower bounds; ``None`` marks an open bound."""
        return self._lo

    @property
    def upper(self) -> Tuple[Optional[int], ...]:
        """Per-axis upper bounds; ``None`` marks an open bound."""
        return self._hi

    @property
    def is_bounded(self) -> bool:
        """True when no bound is open."""
        return all(v is not None for v in self._lo + self._hi)

    def _require_bounded(self, op: str) -> None:
        if not self.is_bounded:
            raise OpenBoundError(f"{op} requires fixed bounds, got {self}")

    @property
    def shape(self) -> Tuple[int, ...]:
        """Inclusive extent per axis: ``u_i - l_i + 1``."""
        self._require_bounded("shape")
        return tuple(u - l + 1 for l, u in zip(self._lo, self._hi))  # type: ignore[operator]

    @property
    def cell_count(self) -> int:
        """Number of integer points inside the interval."""
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    @property
    def lowest(self) -> Point:
        """The lowest vertex ``(l_1, ..., l_d)`` under the lower-than order."""
        self._require_bounded("lowest")
        return self._lo  # type: ignore[return-value]

    @property
    def highest(self) -> Point:
        """The highest vertex ``(u_1, ..., u_d)``."""
        self._require_bounded("highest")
        return self._hi  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def _check_dim(self, other: "MInterval") -> None:
        if self.dim != other.dim:
            raise DimensionMismatchError(
                f"dim {self.dim} interval combined with dim {other.dim}"
            )

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if the integer point lies inside (open bounds always pass)."""
        if len(point) != self.dim:
            raise DimensionMismatchError(
                f"point of dim {len(point)} tested against dim {self.dim}"
            )
        for coord, l, u in zip(point, self._lo, self._hi):
            if l is not None and coord < l:
                return False
            if u is not None and coord > u:
                return False
        return True

    def contains(self, other: "MInterval") -> bool:
        """True if ``other`` lies fully inside ``self``.

        Open bounds on ``self`` accept anything on that side; an open bound
        on ``other`` is only contained by an equally open bound of ``self``.
        """
        self._check_dim(other)
        for sl, su, ol, ou in zip(self._lo, self._hi, other._lo, other._hi):
            if sl is not None and (ol is None or ol < sl):
                return False
            if su is not None and (ou is None or ou > su):
                return False
        return True

    def intersects(self, other: "MInterval") -> bool:
        """True if the two intervals share at least one point."""
        self._check_dim(other)
        for sl, su, ol, ou in zip(self._lo, self._hi, other._lo, other._hi):
            if su is not None and ol is not None and su < ol:
                return False
            if ou is not None and sl is not None and ou < sl:
                return False
        return True

    def is_adjacent(self, other: "MInterval", axis: int) -> bool:
        """True if the two bounded boxes touch face-to-face along ``axis``
        and agree exactly on every other axis (so their union is a box)."""
        self._check_dim(other)
        self._require_bounded("is_adjacent")
        other._require_bounded("is_adjacent")
        for ax in range(self.dim):
            if ax == axis:
                continue
            if self._lo[ax] != other._lo[ax] or self._hi[ax] != other._hi[ax]:
                return False
        return (
            self._hi[axis] + 1 == other._lo[axis]  # type: ignore[operator]
            or other._hi[axis] + 1 == self._lo[axis]  # type: ignore[operator]
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def intersection(self, other: "MInterval") -> Optional["MInterval"]:
        """The common sub-interval, or ``None`` when disjoint."""
        self._check_dim(other)
        if not self.intersects(other):
            return None
        lo: list[Optional[int]] = []
        hi: list[Optional[int]] = []
        for sl, su, ol, ou in zip(self._lo, self._hi, other._lo, other._hi):
            if sl is None:
                lo.append(ol)
            elif ol is None:
                lo.append(sl)
            else:
                lo.append(max(sl, ol))
            if su is None:
                hi.append(ou)
            elif ou is None:
                hi.append(su)
            else:
                hi.append(min(su, ou))
        return MInterval(lo, hi)

    def hull(self, other: "MInterval") -> "MInterval":
        """Minimal interval containing both (the paper's closure operation)."""
        self._check_dim(other)
        lo: list[Optional[int]] = []
        hi: list[Optional[int]] = []
        for sl, su, ol, ou in zip(self._lo, self._hi, other._lo, other._hi):
            lo.append(None if sl is None or ol is None else min(sl, ol))
            hi.append(None if su is None or ou is None else max(su, ou))
        return MInterval(lo, hi)

    def translate(self, offset: Sequence[int]) -> "MInterval":
        """Shift the interval by an integer vector (open bounds stay open)."""
        if len(offset) != self.dim:
            raise DimensionMismatchError("offset dim mismatch")
        lo = [None if l is None else l + o for l, o in zip(self._lo, offset)]
        hi = [None if u is None else u + o for u, o in zip(self._hi, offset)]
        return MInterval(lo, hi)

    def resolve(self, domain: "MInterval") -> "MInterval":
        """Replace open bounds with the corresponding bounds of ``domain``.

        Used to turn query templates like ``[32:59,*:*,28:35]`` into concrete
        regions against an object's current domain.
        """
        self._check_dim(domain)
        lo = [d if s is None else s for s, d in zip(self._lo, domain._lo)]
        hi = [d if s is None else s for s, d in zip(self._hi, domain._hi)]
        if any(v is None for v in lo + hi):
            raise OpenBoundError(
                f"resolving {self} against open domain {domain} stays open"
            )
        return MInterval(lo, hi)

    def split(self, axis: int, coordinate: int) -> Tuple["MInterval", "MInterval"]:
        """Cut with the hyperplane ``x_axis = coordinate``.

        Returns ``(low_part, high_part)`` where the low part ends at
        ``coordinate - 1`` and the high part starts at ``coordinate``.
        ``coordinate`` must lie strictly inside the axis extent.
        """
        self._require_bounded("split")
        if not 0 <= axis < self.dim:
            raise GeometryError(f"axis {axis} out of range for dim {self.dim}")
        l, u = self._lo[axis], self._hi[axis]
        if not (l < coordinate <= u):  # type: ignore[operator]
            raise GeometryError(
                f"split coordinate {coordinate} outside ({l}, {u}] on axis {axis}"
            )
        low_hi = list(self._hi)
        low_hi[axis] = coordinate - 1
        high_lo = list(self._lo)
        high_lo[axis] = coordinate
        return MInterval(self._lo, low_hi), MInterval(high_lo, self._hi)

    def difference(self, other: "MInterval") -> list["MInterval"]:
        """``self`` minus ``other`` as a list of disjoint boxes.

        The decomposition slabs axis by axis; the result is empty when
        ``other`` covers ``self`` and is ``[self]`` when they are disjoint.
        """
        self._require_bounded("difference")
        inter = self.intersection(other)
        if inter is None:
            return [self]
        pieces: list[MInterval] = []
        remaining = self
        for axis in range(self.dim):
            r_lo, r_hi = remaining._lo[axis], remaining._hi[axis]
            i_lo, i_hi = inter._lo[axis], inter._hi[axis]
            if i_lo > r_lo:  # type: ignore[operator]
                below, remaining = remaining.split(axis, i_lo)  # type: ignore[arg-type]
                pieces.append(below)
            if i_hi < r_hi:  # type: ignore[operator]
                remaining, above = remaining.split(axis, i_hi + 1)  # type: ignore[operator]
                pieces.append(above)
        return pieces

    # ------------------------------------------------------------------
    # Array integration
    # ------------------------------------------------------------------

    def to_slices(self, origin: Optional[Sequence[int]] = None) -> Tuple[slice, ...]:
        """Numpy slice tuple addressing this box inside an array whose index
        0 corresponds to ``origin`` (default: this interval's own lower
        corner, giving ``slice(0, shape_i)`` per axis).
        """
        self._require_bounded("to_slices")
        if origin is None:
            origin = self.lowest
        if len(origin) != self.dim:
            raise DimensionMismatchError("origin dim mismatch")
        return tuple(
            slice(l - o, u - o + 1)
            for l, u, o in zip(self._lo, self._hi, origin)  # type: ignore[operator]
        )

    def linear_offset(self, point: Sequence[int]) -> int:
        """Row-major offset of ``point`` within this interval.

        This realises the paper's implicit linear cell ordering used to
        serialise tiles into BLOBs.
        """
        self._require_bounded("linear_offset")
        if not self.contains_point(point):
            raise GeometryError(f"point {tuple(point)} outside {self}")
        offset = 0
        for coord, l, extent in zip(point, self._lo, self.shape):
            offset = offset * extent + (coord - l)  # type: ignore[operator]
        return offset

    def point_at_offset(self, offset: int) -> Point:
        """Inverse of :meth:`linear_offset`."""
        self._require_bounded("point_at_offset")
        if not 0 <= offset < self.cell_count:
            raise GeometryError(f"offset {offset} outside [0, {self.cell_count})")
        coords: list[int] = []
        for extent in reversed(self.shape):
            coords.append(offset % extent)
            offset //= extent
        coords.reverse()
        return tuple(c + l for c, l in zip(coords, self._lo))  # type: ignore[operator]

    def points(self) -> Iterator[Point]:
        """Iterate all integer points in row-major (lower-than) order.

        Only sensible for small intervals; intended for tests and small
        sparse structures.
        """
        self._require_bounded("points")
        ranges = [range(l, u + 1) for l, u in zip(self._lo, self._hi)]  # type: ignore[arg-type, operator]
        return itertools.product(*ranges)

    def section(self, axis: int, coordinate: int) -> "MInterval":
        """The degenerate slab ``x_axis = coordinate`` of this interval
        (still dim-d, extent 1 along ``axis``) — access type (d) of §5.1."""
        if not 0 <= axis < self.dim:
            raise GeometryError(f"axis {axis} out of range for dim {self.dim}")
        l, u = self._lo[axis], self._hi[axis]
        if (l is not None and coordinate < l) or (u is not None and coordinate > u):
            raise GeometryError(
                f"section coordinate {coordinate} outside axis {axis} of {self}"
            )
        lo = list(self._lo)
        hi = list(self._hi)
        lo[axis] = coordinate
        hi[axis] = coordinate
        return MInterval(lo, hi)

    def project_out(self, axis: int) -> "MInterval":
        """Drop one axis (dimension reduction after taking a section)."""
        if self.dim == 1:
            raise GeometryError("cannot project the only axis away")
        if not 0 <= axis < self.dim:
            raise GeometryError(f"axis {axis} out of range for dim {self.dim}")
        lo = list(self._lo)
        hi = list(self._hi)
        del lo[axis], hi[axis]
        return MInterval(lo, hi)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MInterval):
            return NotImplemented
        return self._lo == other._lo and self._hi == other._hi

    def __hash__(self) -> int:
        return hash((self._lo, self._hi))

    def __repr__(self) -> str:
        return f"MInterval({str(self)!r})"

    def __str__(self) -> str:
        axes = ",".join(
            f"{'*' if l is None else l}:{'*' if u is None else u}"
            for l, u in zip(self._lo, self._hi)
        )
        return f"[{axes}]"

    def __contains__(self, point: object) -> bool:
        if isinstance(point, MInterval):
            return point.dim == self.dim and self.contains(point)
        if isinstance(point, Sequence) and not isinstance(point, (str, bytes)):
            if len(point) != self.dim:
                return False
            return self.contains_point(point)  # type: ignore[arg-type]
        return False


def total_cells(intervals: Iterable[MInterval]) -> int:
    """Sum of cell counts over an iterable of bounded intervals."""
    return sum(iv.cell_count for iv in intervals)


def pairwise_disjoint(intervals: Sequence[MInterval]) -> bool:
    """True if no two intervals in the sequence intersect.

    Quadratic; used for validation and tests, not hot paths.
    """
    for i, a in enumerate(intervals):
        for b in intervals[i + 1:]:
            if a.intersects(b):
                return False
    return True


def covers_exactly(parts: Sequence[MInterval], whole: MInterval) -> bool:
    """True if ``parts`` are disjoint and tile ``whole`` with no gap.

    Verified by cell-count accounting plus containment, which is exact for
    disjoint boxes: equal total volume inside the region implies full cover.
    """
    if not pairwise_disjoint(parts):
        return False
    if not all(whole.contains(p) for p in parts):
        return False
    return total_cells(parts) == whole.cell_count
