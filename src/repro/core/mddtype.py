"""MDD types: base type + definition domain.

An MDD *type* (paper Section 3) fixes two properties of its instances:

* the cell base type (hence the cell size), and
* the *definition domain* — a d-dimensional interval that may be open
  (``*``) on any side, bounding where cells may ever exist.

Instances of the type additionally carry a *current domain* — the minimal
interval covering the cells present right now — which lives on the object
(:mod:`repro.core.mdd`), not on the type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.cells import BaseType, base_type
from repro.core.errors import DomainError, TypeSystemError
from repro.core.geometry import MInterval


@dataclass(frozen=True)
class MDDType:
    """An MDD type: named pairing of a base type and a definition domain.

    >>> t = MDDType("GreyImage", base_type("char"), MInterval.parse("[0:*,0:*]"))
    >>> t.dim
    2
    """

    name: str
    base: BaseType
    definition_domain: MInterval

    def __post_init__(self) -> None:
        if not isinstance(self.base, BaseType):
            raise TypeSystemError(f"base must be a BaseType, got {self.base!r}")
        if not isinstance(self.definition_domain, MInterval):
            raise TypeSystemError(
                f"definition_domain must be an MInterval, got "
                f"{self.definition_domain!r}"
            )

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of instances."""
        return self.definition_domain.dim

    @property
    def cell_size(self) -> int:
        """Cell size in bytes."""
        return self.base.size

    def admits(self, domain: MInterval) -> bool:
        """True if ``domain`` is a legal (current or tile) domain for
        instances of this type: bounded and inside the definition domain."""
        return domain.is_bounded and self.definition_domain.contains(domain)

    def validate_domain(self, domain: MInterval, what: str = "domain") -> None:
        """Raise :class:`DomainError` unless :meth:`admits` holds."""
        if domain.dim != self.dim:
            raise DomainError(
                f"{what} {domain} has dim {domain.dim}, type {self.name!r} "
                f"has dim {self.dim}"
            )
        if not domain.is_bounded:
            raise DomainError(f"{what} {domain} must have fixed bounds")
        if not self.definition_domain.contains(domain):
            raise DomainError(
                f"{what} {domain} escapes definition domain "
                f"{self.definition_domain} of type {self.name!r}"
            )

    def __str__(self) -> str:
        return f"{self.name}<{self.base},{self.definition_domain}>"


def mdd_type(
    name: str,
    base: Union[str, BaseType],
    domain: Union[str, MInterval],
) -> MDDType:
    """Convenience constructor accepting string forms.

    >>> mdd_type("Cube", "ulong", "[1:730,1:60,1:100]").cell_size
    4
    """
    resolved_base = base_type(base) if isinstance(base, str) else base
    resolved_domain = MInterval.parse(domain) if isinstance(domain, str) else domain
    return MDDType(name, resolved_base, resolved_domain)
