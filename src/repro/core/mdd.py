"""In-memory MDD objects: sets of disjoint tiles plus a current domain.

This module implements the logical MDD model of the paper (Sections 3-4):

* an object is a set of disjoint :class:`Tile` instances;
* inserting a tile updates the *current domain* by a closure (hull)
  operation;
* tiles need not cover the current domain — uncovered cells read as the
  base type's default value (partial coverage, used for sparse OLAP data);
* reads are range queries composing tile fragments into a result array;
* sections (access type (d)) reduce dimensionality.

Persistence, timing and indexing live in :mod:`repro.storage.tilestore`;
this module is the pure in-memory semantics those layers must preserve.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.errors import DomainError, QueryError
from repro.core.geometry import MInterval, pairwise_disjoint
from repro.core.mddtype import MDDType


class Tile:
    """One multidimensional sub-array of an MDD object.

    The tile's data is a contiguous ndarray whose shape equals the domain's
    shape; serialisation to BLOB bytes is the row-major byte dump of that
    array (the paper's implicit cell order).
    """

    __slots__ = ("domain", "data")

    def __init__(self, domain: MInterval, data: np.ndarray) -> None:
        if not domain.is_bounded:
            raise DomainError(f"tile domain must be bounded, got {domain}")
        if tuple(data.shape) != domain.shape:
            raise DomainError(
                f"tile data shape {tuple(data.shape)} does not match "
                f"domain {domain} shape {domain.shape}"
            )
        self.domain = domain
        self.data = np.ascontiguousarray(data)

    @classmethod
    def filled(
        cls, domain: MInterval, dtype: np.dtype, value: object = 0
    ) -> "Tile":
        """A tile of constant cells."""
        data = np.zeros(domain.shape, dtype=dtype)
        if value != 0:
            data[...] = value
        return cls(domain, data)

    @property
    def byte_size(self) -> int:
        """Tile payload size in bytes (cells × cell size)."""
        return int(self.data.nbytes)

    def extract(self, region: MInterval) -> np.ndarray:
        """View of the cells in ``region`` (must intersect the tile)."""
        part = self.domain.intersection(region)
        if part is None:
            raise QueryError(f"region {region} does not touch tile {self.domain}")
        return self.data[part.to_slices(self.domain.lowest)]

    def to_bytes(self) -> bytes:
        """Row-major serialisation used for BLOB storage."""
        return self.data.tobytes(order="C")

    @classmethod
    def from_bytes(
        cls, domain: MInterval, raw: bytes, dtype: np.dtype
    ) -> "Tile":
        """Inverse of :meth:`to_bytes`."""
        expected = domain.cell_count * dtype.itemsize
        if len(raw) != expected:
            raise DomainError(
                f"blob of {len(raw)} bytes cannot fill domain {domain} "
                f"({expected} bytes expected)"
            )
        data = np.frombuffer(raw, dtype=dtype).reshape(domain.shape)
        return cls(domain, data.copy())

    def __repr__(self) -> str:
        return f"Tile({self.domain}, {self.data.dtype}, {self.byte_size}B)"


class MDDObject:
    """A multidimensional discrete data object: typed set of disjoint tiles."""

    def __init__(self, mdd_type: MDDType, name: str = "") -> None:
        self.mdd_type = mdd_type
        self.name = name
        self._tiles: list[Tile] = []
        self._current_domain: Optional[MInterval] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        mdd_type: MDDType,
        array: np.ndarray,
        origin: Optional[Sequence[int]] = None,
        tiling: Optional[Iterable[MInterval]] = None,
        name: str = "",
    ) -> "MDDObject":
        """Build an object from a dense array, optionally pre-tiled.

        ``origin`` places ``array[0, ..., 0]`` in coordinate space (defaults
        to the definition domain's lower corner when bounded, else zeros).
        ``tiling`` is an iterable of disjoint domains covering (a subset of)
        the array's region; when omitted a single tile holds everything.
        """
        if array.dtype != mdd_type.base.dtype:
            array = array.astype(mdd_type.base.dtype)
        if origin is None:
            dd = mdd_type.definition_domain
            origin = tuple(0 if l is None else l for l in dd.lower)
        region = MInterval.from_shape(array.shape, origin)
        obj = cls(mdd_type, name=name)
        if tiling is None:
            obj.insert_tile(Tile(region, array))
            return obj
        for tile_domain in tiling:
            if not region.contains(tile_domain):
                raise DomainError(
                    f"tiling element {tile_domain} escapes array region {region}"
                )
            obj.insert_tile(
                Tile(tile_domain, array[tile_domain.to_slices(origin)])
            )
        return obj

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def tiles(self) -> tuple[Tile, ...]:
        """The object's tiles (insertion order)."""
        return tuple(self._tiles)

    @property
    def tile_count(self) -> int:
        return len(self._tiles)

    @property
    def current_domain(self) -> Optional[MInterval]:
        """Minimal interval covering all inserted tiles; None when empty."""
        return self._current_domain

    @property
    def dim(self) -> int:
        return self.mdd_type.dim

    @property
    def byte_size(self) -> int:
        """Total bytes held in tiles (not counting default-value areas)."""
        return sum(t.byte_size for t in self._tiles)

    def covered_cells(self) -> int:
        """Number of cells actually materialised in tiles."""
        return sum(t.domain.cell_count for t in self._tiles)

    def coverage(self) -> float:
        """Fraction of the current domain covered by tiles (1.0 = dense)."""
        if self._current_domain is None:
            return 0.0
        return self.covered_cells() / self._current_domain.cell_count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_tile(self, tile: Tile) -> None:
        """Insert one tile; grows the current domain by hull (paper §4).

        Raises :class:`DomainError` when the tile escapes the definition
        domain or overlaps an existing tile.
        """
        self.mdd_type.validate_domain(tile.domain, what="tile domain")
        if tile.data.dtype != self.mdd_type.base.dtype:
            raise DomainError(
                f"tile dtype {tile.data.dtype} does not match type "
                f"{self.mdd_type.base.dtype}"
            )
        for existing in self._tiles:
            if existing.domain.intersects(tile.domain):
                raise DomainError(
                    f"tile {tile.domain} overlaps existing {existing.domain}"
                )
        self._tiles.append(tile)
        if self._current_domain is None:
            self._current_domain = tile.domain
        else:
            self._current_domain = self._current_domain.hull(tile.domain)

    def update(self, region: MInterval, values: np.ndarray) -> int:
        """Overwrite cells of an already-covered region in place.

        Returns the number of cells written.  Cells of ``region`` that fall
        outside all tiles are ignored (they stay at the default value);
        use :meth:`insert_tile` to materialise new areas.
        """
        self.mdd_type.validate_domain(region, what="update region")
        if tuple(values.shape) != region.shape:
            raise DomainError(
                f"update values shape {tuple(values.shape)} does not match "
                f"region {region}"
            )
        written = 0
        for tile in self._tiles:
            part = tile.domain.intersection(region)
            if part is None:
                continue
            tile.data[part.to_slices(tile.domain.lowest)] = values[
                part.to_slices(region.lowest)
            ]
            written += part.cell_count
        return written

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def intersecting_tiles(self, region: MInterval) -> Iterator[Tile]:
        """Tiles whose domain touches ``region`` (linear scan)."""
        for tile in self._tiles:
            if tile.domain.intersects(region):
                yield tile

    def read(self, region: MInterval) -> np.ndarray:
        """Range query (access type (b)): dense array over ``region``.

        ``region`` may use ``*`` bounds, resolved against the current
        domain.  Uncovered cells carry the base type's default value.
        """
        region = self.resolve_region(region)
        result = np.zeros(region.shape, dtype=self.mdd_type.base.dtype)
        default = self.mdd_type.base.default
        if default != 0:
            result[...] = default
        for tile in self.intersecting_tiles(region):
            part = tile.domain.intersection(region)
            assert part is not None
            result[part.to_slices(region.lowest)] = tile.data[
                part.to_slices(tile.domain.lowest)
            ]
        return result

    def read_all(self) -> np.ndarray:
        """The whole object (access type (a))."""
        if self._current_domain is None:
            raise QueryError(f"object {self.name!r} holds no cells yet")
        return self.read(self._current_domain)

    def section(self, axis: int, coordinate: int) -> np.ndarray:
        """Access type (d): fix one coordinate, drop that axis."""
        if self._current_domain is None:
            raise QueryError(f"object {self.name!r} holds no cells yet")
        slab = self._current_domain.section(axis, coordinate)
        return self.read(slab).squeeze(axis=axis)

    def resolve_region(self, region: MInterval) -> MInterval:
        """Clamp a (possibly open) query region against the current domain."""
        if self._current_domain is None:
            raise QueryError(f"object {self.name!r} holds no cells yet")
        if region.dim != self.dim:
            raise QueryError(
                f"query dim {region.dim} does not match object dim {self.dim}"
            )
        resolved = region.resolve(self._current_domain)
        clipped = resolved.intersection(self._current_domain)
        if clipped is None:
            raise QueryError(
                f"region {region} lies outside current domain "
                f"{self._current_domain}"
            )
        return clipped

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert the object's invariants (used by tests and loaders)."""
        domains = [t.domain for t in self._tiles]
        if not pairwise_disjoint(domains):
            raise DomainError(f"object {self.name!r} has overlapping tiles")
        if domains:
            hull = MInterval.hull_of(domains)
            if hull != self._current_domain:
                raise DomainError(
                    f"current domain {self._current_domain} is not the hull "
                    f"{hull} of the tiles"
                )
        elif self._current_domain is not None:
            raise DomainError("empty object must have no current domain")

    def __repr__(self) -> str:
        return (
            f"MDDObject({self.name!r}, type={self.mdd_type.name}, "
            f"tiles={self.tile_count}, domain={self._current_domain})"
        )
