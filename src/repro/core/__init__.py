"""Core MDD model: geometry, cell types, MDD types and in-memory objects."""

from repro.core.cells import BaseType, base_type, known_base_types
from repro.core.errors import (
    DimensionMismatchError,
    DomainError,
    GeometryError,
    OpenBoundError,
    QueryError,
    ReproError,
    StorageError,
    TilingError,
    TypeSystemError,
)
from repro.core.geometry import (
    MInterval,
    OPEN,
    covers_exactly,
    pairwise_disjoint,
    point_lower_than,
    total_cells,
)
from repro.core.mdd import MDDObject, Tile
from repro.core.mddtype import MDDType, mdd_type
from repro.core.order import (
    column_major_key,
    hilbert_key,
    row_major_key,
    tile_order,
    z_order_key,
)

__all__ = [
    "BaseType",
    "DimensionMismatchError",
    "DomainError",
    "GeometryError",
    "MDDObject",
    "MDDType",
    "MInterval",
    "OPEN",
    "OpenBoundError",
    "QueryError",
    "ReproError",
    "StorageError",
    "Tile",
    "TilingError",
    "TypeSystemError",
    "base_type",
    "column_major_key",
    "covers_exactly",
    "hilbert_key",
    "known_base_types",
    "mdd_type",
    "pairwise_disjoint",
    "point_lower_than",
    "row_major_key",
    "tile_order",
    "total_cells",
    "z_order_key",
]
