"""Linearisation orders for cells and tiles.

Persistent media are linear (paper Section 3), so both the cells inside a
tile and the tiles of an object must be given a total order:

* cells inside a tile are always serialised in row-major order — the
  paper's *lower-than* order;
* tiles themselves can be clustered on disk in row-major, Z (Morton) or
  Hilbert order of their lowest vertex.  Related work ([11], [13]) studies
  these orderings; the tile store lets benchmarks choose.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.errors import GeometryError

TileKey = Callable[[Sequence[int]], object]


def row_major_key(point: Sequence[int]) -> tuple[int, ...]:
    """Sort key realising the paper's lower-than (C row-major) order."""
    return tuple(point)


def column_major_key(point: Sequence[int]) -> tuple[int, ...]:
    """Fortran order: last axis varies slowest."""
    return tuple(reversed(tuple(point)))


def z_order_key(point: Sequence[int], bits: int = 21) -> int:
    """Morton (Z-order) key: interleave the bits of all coordinates.

    Coordinates must be non-negative and fit in ``bits`` bits.  Callers with
    negative coordinates should translate to the object's lower corner first.
    """
    key = 0
    dim = len(point)
    for coord in point:
        if coord < 0 or coord >> bits:
            raise GeometryError(
                f"z_order_key needs 0 <= coord < 2**{bits}, got {coord}"
            )
    for bit in range(bits - 1, -1, -1):
        for coord in point:
            key = (key << 1) | ((coord >> bit) & 1)
    return key


def hilbert_key(point: Sequence[int], bits: int = 21) -> int:
    """d-dimensional Hilbert curve key (Skilling's transform).

    Converts the point to its Hilbert-curve rank, preserving locality better
    than Z-order.  Coordinates must be non-negative and fit in ``bits`` bits.
    """
    dim = len(point)
    coords = list(point)
    for coord in coords:
        if coord < 0 or coord >> bits:
            raise GeometryError(
                f"hilbert_key needs 0 <= coord < 2**{bits}, got {coord}"
            )
    x = coords[:]
    # Skilling's inverse transform: Gray-decode axes in place.
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dim):
        x[i] ^= t
    # Interleave the transposed coordinates into one integer rank.
    key = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dim):
            key = (key << 1) | ((x[i] >> bit) & 1)
    return key


def shifted_key(key: TileKey, origin: Sequence[int]) -> TileKey:
    """Translate points to ``origin`` before keying.

    Z-order and Hilbert keys require non-negative coordinates; objects
    whose domain starts elsewhere (the salescube starts at ``(1, 1, 1)``)
    wrap their clustering order with the domain's lower corner so tile
    corners land on the curve at the right place.

    >>> shifted_key(z_order_key, (1, 1))((1, 1))
    0
    """
    offset = tuple(origin)

    def shifted(point: Sequence[int]) -> object:
        return key(tuple(c - o for c, o in zip(point, offset)))

    return shifted


_ORDERS: dict[str, TileKey] = {
    "row_major": row_major_key,
    "column_major": column_major_key,
    "z": z_order_key,
    "hilbert": hilbert_key,
}


def tile_order(name: str) -> TileKey:
    """Look up a tile clustering order by name.

    >>> tile_order("row_major")((3, 4))
    (3, 4)
    """
    try:
        return _ORDERS[name]
    except KeyError:
        raise GeometryError(
            f"unknown tile order {name!r}; known: {sorted(_ORDERS)}"
        ) from None
