"""Network service layer: the database behind a REST tile server.

``repro.serve`` turns the library into a service (DESIGN §14): a
zero-dependency threaded HTTP server exposing collections, range reads
with content negotiation (raw numpy bytes, compressed tile frames, JSON
slices), RaSQL queries, and ingest writes — every read pinned to one
MVCC snapshot and revalidated through epoch-keyed ETags.  The matching
parallel client lives in :mod:`repro.client`.
"""

from repro.serve.server import TileServer
from repro.serve.wire import (
    FORMAT_JSON,
    FORMAT_RAW,
    FORMAT_TILES,
    TileFrame,
    assemble,
    decode_frames,
    encode_frames,
    epoch_from_etag,
    etag_for,
)

__all__ = [
    "FORMAT_JSON",
    "FORMAT_RAW",
    "FORMAT_TILES",
    "TileFrame",
    "TileServer",
    "assemble",
    "decode_frames",
    "encode_frames",
    "epoch_from_etag",
    "etag_for",
]
