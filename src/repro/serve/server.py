"""The tile server: a database behind REST (DESIGN §14).

A zero-dependency threaded HTTP server (lifecycle shared with the
metrics endpoint via :class:`repro.httpd.HttpServerHandle`) exposing one
:class:`~repro.storage.tilestore.Database`:

* ``GET  /healthz``                     — liveness JSON (epoch, objects);
* ``GET  /metrics``                     — Prometheus exposition, including
  the ``serve.*`` instruments below;
* ``GET  /v1/collections``              — catalog listing with ETags;
* ``GET  /v1/{coll}/{obj}``             — object metadata;
* ``GET  /v1/{coll}/{obj}/tiles?box=``  — tile plan (domains, codecs) of a
  box at one pinned epoch, for parallel clients;
* ``GET  /v1/{coll}/{obj}/slice?box=``  — range read; content negotiation
  picks raw numpy bytes, compressed tile frames, or JSON
  (:mod:`repro.serve.wire`);
* ``POST /v1/query``                    — RaSQL (predicates route through
  zone-map pruning, condensers through the synopsis short-circuit);
* ``POST /v1/{coll}/{obj}/write?box=``  — ingest: update an object in
  place, or auto-create it from the request's dtype and box.

**Snapshot isolation.**  Every read request opens one
:meth:`Database.snapshot` pin for its whole lifetime, so a response is
always one committed state — never half a concurrent transaction — and
raw reads run through the coalesced ``fetch_tiles`` read pipeline.

**ETags.**  Responses carry a strong epoch-keyed ETag
(:func:`repro.serve.wire.etag_for`); ``If-None-Match`` revalidation
answers 304 with no body while the object's published epoch is
unchanged, and ``X-Repro-Expect-Etag`` lets a parallel client demand one
epoch across many tile fetches (mismatch answers 409, the client
retries its whole read at the new epoch).

Errors are JSON bodies ``{"error": ..., "status": ...}`` with the
matching 4xx/5xx status.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler
from typing import Optional
from urllib.parse import parse_qs, unquote, urlparse

import numpy as np

from repro import obs
from repro.core.cells import base_type, known_base_types
from repro.core.errors import (
    DomainError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.httpd import HttpServerHandle
from repro.obs import export
from repro.query.engine import QueryEngine
from repro.query.rasql import execute as rasql_execute
from repro.query.timing import QueryTiming
from repro.serve import wire
from repro.storage.mvcc import ObjectVersion
from repro.storage.tilestore import Database, StoredMDD
from repro.tiling.aligned import RegularTiling

_REQUESTS = obs.counter("serve.requests", "HTTP requests received")
_STATUS_2XX = obs.counter("serve.status_2xx", "Successful responses")
_STATUS_304 = obs.counter(
    "serve.status_304", "Conditional reads answered not-modified"
)
_STATUS_4XX = obs.counter("serve.status_4xx", "Client-error responses")
_STATUS_5XX = obs.counter("serve.status_5xx", "Server-error responses")
_BYTES_OUT = obs.counter("serve.bytes_out", "Response body bytes sent")
_BYTES_IN = obs.counter("serve.bytes_in", "Request body bytes received")
_ENDPOINT_MS = {
    "meta": obs.histogram(
        "serve.meta_ms", "Wall ms per catalog/metadata request"
    ),
    "slice": obs.histogram("serve.slice_ms", "Wall ms per slice read"),
    "tiles": obs.histogram("serve.tiles_ms", "Wall ms per tile-plan request"),
    "query": obs.histogram("serve.query_ms", "Wall ms per RaSQL query"),
    "write": obs.histogram("serve.write_ms", "Wall ms per ingest write"),
    "metrics": obs.histogram(
        "serve.metrics_ms", "Wall ms per metrics/health scrape"
    ),
}

#: Default tile budget for auto-created objects (bytes).
DEFAULT_TILE_BYTES = 64 * 1024


class _HttpError(Exception):
    """An error with a wire status; the handler turns it into JSON."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _timing_dict(timing: QueryTiming) -> dict:
    return {
        "t_ix": timing.t_ix,
        "t_o": timing.t_o,
        "t_cpu": timing.t_cpu,
        "tiles_read": timing.tiles_read,
        "tiles_pruned": timing.tiles_pruned,
        "tiles_synopsis_answered": timing.tiles_synopsis_answered,
        "tiles_decoded": timing.tiles_read,
        "tiles_partial_agg": timing.tiles_partial_agg,
        "peak_partial_bytes": timing.peak_partial_bytes,
        "bytes_read": timing.bytes_read,
        "pages_read": timing.pages_read,
        "cells_result": timing.cells_result,
    }


class TileServer:
    """The database behind REST; start/stop or use as a context manager."""

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.database = database
        self._handle = HttpServerHandle(
            _make_handler(database),
            host=host,
            port=port,
            thread_name="repro-tile-server",
        )

    @property
    def port(self) -> int:
        return self._handle.port

    @property
    def url(self) -> str:
        return f"http://{self._handle.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._handle.running

    def start(self) -> "TileServer":
        self._handle.start()
        return self

    def stop(self) -> None:
        self._handle.stop()

    def join(self) -> None:
        self._handle.join()

    def __enter__(self) -> "TileServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()


def _make_handler(database: Database) -> type[BaseHTTPRequestHandler]:
    """Handler class closed over the database it serves."""

    class Handler(BaseHTTPRequestHandler):
        # Keep-alive matters for the parallel client's connection pool.
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
            pass

        # -- dispatch ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            _REQUESTS.inc()
            parsed = urlparse(self.path)
            segments = [
                unquote(part) for part in parsed.path.split("/") if part
            ]
            params = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            endpoint = "meta"
            started = time.perf_counter()
            try:
                if method == "GET" and segments == ["healthz"]:
                    endpoint = "metrics"
                    self._healthz()
                elif method == "GET" and segments == ["metrics"]:
                    endpoint = "metrics"
                    self._metrics()
                elif method == "GET" and segments == ["v1", "collections"]:
                    self._collections()
                elif method == "POST" and segments == ["v1", "query"]:
                    endpoint = "query"
                    self._query()
                elif len(segments) == 3 and segments[0] == "v1":
                    if method != "GET":
                        raise _HttpError(405, "object metadata is GET-only")
                    self._object_meta(segments[1], segments[2])
                elif len(segments) == 4 and segments[0] == "v1":
                    coll, obj, action = segments[1], segments[2], segments[3]
                    if action == "slice" and method == "GET":
                        endpoint = "slice"
                        self._slice(coll, obj, params)
                    elif action == "tiles" and method == "GET":
                        endpoint = "tiles"
                        self._tiles(coll, obj, params)
                    elif action == "write" and method == "POST":
                        endpoint = "write"
                        self._write(coll, obj, params)
                    else:
                        raise _HttpError(
                            404, f"no route {method} {parsed.path}"
                        )
                else:
                    raise _HttpError(404, f"no route {method} {parsed.path}")
            except _HttpError as exc:
                self._error(exc.status, exc.message)
            except (wire.WireError, QueryError, DomainError) as exc:
                # Malformed boxes, bad predicates, RaSQL syntax errors,
                # out-of-domain regions: the client's fault.
                self._error(400, str(exc))
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response
            except ReproError as exc:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - last-resort boundary
                self._error(500, f"{type(exc).__name__}: {exc}")
            finally:
                _ENDPOINT_MS[endpoint].observe(
                    (time.perf_counter() - started) * 1000.0
                )

        # -- endpoint implementations --------------------------------------

        def _healthz(self) -> None:
            payload = {
                "status": "ok",
                "epoch": database.epoch.current,
                "collections": len(database.collections),
                "objects": sum(
                    len(objects) for objects in database.collections.values()
                ),
            }
            self._reply_json(200, payload)

        def _metrics(self) -> None:
            body = export.prometheus_text(obs.registry).encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")

        def _collections(self) -> None:
            with database.snapshot() as snap:
                listing: dict = {}
                for coll_name in sorted(database.collections):
                    entries = []
                    for obj_name in snap.objects(coll_name):
                        version = snap.version(coll_name, obj_name)
                        obj = database.collection(coll_name)[obj_name]
                        entries.append(
                            self._describe(coll_name, obj_name, obj, version)
                        )
                    listing[coll_name] = entries
                self._reply_json(
                    200, {"collections": listing, "epoch": snap.epoch}
                )

        def _object_meta(self, coll: str, name: str) -> None:
            with database.snapshot() as snap:
                obj, version = self._lookup(snap, coll, name)
                payload = self._describe(coll, name, obj, version)
                payload["tiles"] = [
                    {
                        "id": entry.tile_id,
                        "domain": str(entry.domain),
                        "codec": entry.codec,
                        "virtual": entry.virtual,
                    }
                    for entry in version.tiles.values()
                ]
                self._reply_json(
                    200,
                    payload,
                    headers={
                        "ETag": wire.etag_for(coll, name, version.epoch)
                    },
                )

        def _tiles(self, coll: str, name: str, params: dict) -> None:
            """The tile plan of a box at one pinned epoch."""
            with database.snapshot() as snap:
                obj, version = self._lookup(snap, coll, name)
                etag = wire.etag_for(coll, name, version.epoch)
                if self._not_modified(etag):
                    return
                region = self._resolve_box(obj, version, params)
                result = version.index.search(region)
                entries = sorted(
                    (version.tiles[e.tile_id] for e in result.entries),
                    key=lambda t: database.disk.blob_pages(t.blob_id).start,
                )
                payload = {
                    "etag": etag,
                    "epoch": version.epoch,
                    "box": str(region),
                    "dtype": wire.dtype_token(obj.mdd_type.base.dtype),
                    "default": wire.default_token(obj.mdd_type.base.default),
                    "tiles": [
                        {
                            "id": entry.tile_id,
                            "domain": str(entry.domain),
                            "codec": entry.codec,
                            "virtual": entry.virtual,
                        }
                        for entry in entries
                    ],
                }
                self._reply_json(200, payload, headers={"ETag": etag})

        def _slice(self, coll: str, name: str, params: dict) -> None:
            fmt = wire.negotiate(self.headers.get("Accept"))
            if fmt is None:
                raise _HttpError(
                    406,
                    "unsupported Accept; offer application/octet-stream, "
                    "application/x-repro-tiles, or application/json",
                )
            with database.snapshot() as snap:
                obj, version = self._lookup(snap, coll, name)
                etag = wire.etag_for(coll, name, version.epoch)
                if self._not_modified(etag):
                    return
                expect = self.headers.get("X-Repro-Expect-Etag")
                if expect is not None and expect.strip() != etag:
                    self._reply_json(
                        409,
                        {
                            "error": "object changed since the plan was made",
                            "status": 409,
                            "etag": etag,
                        },
                        headers={"ETag": etag},
                    )
                    return
                region = self._resolve_box(obj, version, params)
                dtype = obj.mdd_type.base.dtype
                headers = {
                    "ETag": etag,
                    "Cache-Control": "no-cache",
                    "X-Repro-Epoch": str(version.epoch),
                    "X-Repro-Box": str(region),
                    "X-Repro-Dtype": wire.dtype_token(dtype),
                    "X-Repro-Default": json.dumps(
                        wire.default_token(obj.mdd_type.base.default)
                    ),
                }
                if fmt == wire.FORMAT_TILES:
                    body = self._tile_frames(obj, version, region)
                    self._reply(200, body, fmt, headers=headers)
                    return
                # raw / json route through the pinned version and the
                # coalesced fetch_tiles read pipeline.
                array, timing = obj.read(region, version=version)
                headers["X-Repro-T-O"] = f"{timing.t_o:.6f}"
                headers["X-Repro-Tiles-Read"] = str(timing.tiles_read)
                if fmt == wire.FORMAT_RAW:
                    headers["X-Repro-Shape"] = ",".join(
                        str(side) for side in array.shape
                    )
                    body = np.ascontiguousarray(array).tobytes(order="C")
                    self._reply(200, body, fmt, headers=headers)
                else:
                    payload = {
                        "box": str(region),
                        "shape": list(array.shape),
                        "dtype": wire.dtype_token(dtype),
                        "data": array.tolist(),
                        "timing": _timing_dict(timing),
                    }
                    self._reply_json(200, payload, headers=headers)

        def _tile_frames(
            self, obj: StoredMDD, version: ObjectVersion, region: MInterval
        ) -> bytes:
            """Stored tiles intersecting the region, compressed as stored."""
            result = version.index.search(region)
            entries = sorted(
                (version.tiles[e.tile_id] for e in result.entries),
                key=lambda t: database.disk.blob_pages(t.blob_id).start,
            )
            frames = []
            for entry in entries:
                if entry.virtual:
                    frames.append(
                        wire.TileFrame(entry.domain, "none", b"", virtual=True)
                    )
                    continue
                payload, _cost = database.read_blob(entry.blob_id)
                frames.append(
                    wire.TileFrame(entry.domain, entry.codec, payload)
                )
            return wire.encode_frames(
                region,
                obj.mdd_type.base.dtype,
                obj.mdd_type.base.default,
                frames,
            )

        def _query(self) -> None:
            payload = self._json_body()
            statement = payload.get("query")
            if not isinstance(statement, str) or not statement.strip():
                raise _HttpError(400, "body must be JSON {\"query\": \"...\"}")
            engine = QueryEngine(database)
            results = rasql_execute(engine, statement)
            out = []
            for result in results:
                if result.is_scalar:
                    value = result.value
                    entry = {
                        "object": result.object_name,
                        "kind": "scalar",
                        "value": (
                            value.item()
                            if isinstance(value, np.generic)
                            else value
                        ),
                    }
                else:
                    array = result.array
                    entry = {
                        "object": result.object_name,
                        "kind": "array",
                        "shape": list(array.shape),
                        "dtype": wire.dtype_token(array.dtype),
                        "value": array.tolist(),
                    }
                if result.region is not None:
                    entry["region"] = str(result.region)
                if result.groups is not None:
                    entry["groups"] = [
                        [list(span) for span in axis_spans]
                        for axis_spans in result.groups
                    ]
                if result.plan is not None:
                    entry["plan"] = result.plan.as_dict()
                entry["timing"] = _timing_dict(result.timing)
                out.append(entry)
            # Pushdown effectiveness, observable without parsing the
            # body: totals over every result of the statement.
            pushdown_headers = {
                "X-Repro-Tiles-Pruned": str(
                    sum(r.timing.tiles_pruned for r in results)
                ),
                "X-Repro-Tiles-Synopsis": str(
                    sum(r.timing.tiles_synopsis_answered for r in results)
                ),
                "X-Repro-Tiles-Decoded": str(
                    sum(r.timing.tiles_read for r in results)
                ),
            }
            self._reply_json(
                200,
                {
                    "query": statement,
                    "epoch": database.epoch.current,
                    "results": out,
                },
                headers=pushdown_headers,
            )

        def _write(self, coll: str, name: str, params: dict) -> None:
            box_text = params.get("box") or self.headers.get("X-Repro-Box")
            if box_text is None:
                raise _HttpError(400, "write needs a box parameter")
            region = wire.parse_box(box_text)
            dtype_text = self.headers.get("X-Repro-Dtype")
            if dtype_text is None:
                raise _HttpError(400, "write needs an X-Repro-Dtype header")
            dtype = wire.parse_dtype(dtype_text)
            body = self._raw_body()
            expected = region.cell_count * dtype.itemsize
            if len(body) != expected:
                raise _HttpError(
                    400,
                    f"body holds {len(body)} bytes, box {region} with dtype "
                    f"{dtype_text} needs {expected}",
                )
            values = np.frombuffer(body, dtype=dtype).reshape(region.shape)
            obj = self._find_or_create(coll, name, region, dtype, params)
            if obj.tile_count == 0:
                tile_bytes = int(
                    params.get("tile_kb", DEFAULT_TILE_BYTES // 1024)
                ) * 1024
                stats = obj.load_array(
                    values.copy(), RegularTiling(tile_bytes)
                )
                written = region.cell_count
                tiles = stats.tile_count
            else:
                written = obj.update(region, values)
                tiles = obj.tile_count
            epoch = database.last_commit_epoch()
            version = obj._published
            self._reply_json(
                200,
                {
                    "written_cells": written,
                    "tiles": tiles,
                    "epoch": epoch,
                    "etag": wire.etag_for(coll, name, version.epoch),
                },
            )

        # -- plumbing ------------------------------------------------------

        def _find_or_create(
            self,
            coll: str,
            name: str,
            region: MInterval,
            dtype: np.dtype,
            params: dict,
        ):
            objects = database.collections.get(coll, {})
            obj = objects.get(name)
            if obj is not None:
                return obj
            base_name = params.get("base") or _base_for_dtype(dtype)
            domain_text = params.get("domain")
            domain = (
                wire.parse_box(domain_text)
                if domain_text is not None
                else region
            )
            mdd_type = MDDType(f"{name}_t", base_type(base_name), domain)
            return database.create_object(coll, mdd_type, name)

        def _lookup(self, snap, coll: str, name: str):
            try:
                version = snap.version(coll, name)
            except StorageError as exc:
                raise _HttpError(404, str(exc)) from None
            obj = database.collection(coll)[name]
            return obj, version

        def _resolve_box(
            self, obj: StoredMDD, version: ObjectVersion, params: dict
        ) -> MInterval:
            if version.domain is None:
                raise _HttpError(
                    404, f"object {obj.name!r} holds no tiles yet"
                )
            box_text = params.get("box")
            if box_text is None:
                return version.domain
            return obj._resolve_in(wire.parse_box(box_text), version.domain)

        def _describe(
            self,
            coll: str,
            name: str,
            obj: StoredMDD,
            version: ObjectVersion,
        ) -> dict:
            return {
                "name": name,
                "collection": coll,
                "type": {
                    "name": obj.mdd_type.name,
                    "base": obj.mdd_type.base.name,
                    "definition_domain": str(obj.mdd_type.definition_domain),
                },
                "domain": (
                    str(version.domain) if version.domain is not None else None
                ),
                "tile_count": len(version.tiles),
                "epoch": version.epoch,
                "etag": wire.etag_for(coll, name, version.epoch),
            }

        def _not_modified(self, etag: str) -> bool:
            if wire.etag_matches(etag, self.headers.get("If-None-Match")):
                _STATUS_304.inc()
                self.send_response(304)
                self.send_header("ETag", etag)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return True
            return False

        def _json_body(self) -> dict:
            body = self._raw_body()
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise _HttpError(
                    400, f"request body is not JSON: {exc}"
                ) from None
            if not isinstance(payload, dict):
                raise _HttpError(400, "request body must be a JSON object")
            return payload

        def _raw_body(self) -> bytes:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            body = self.rfile.read(length) if length > 0 else b""
            _BYTES_IN.inc(len(body))
            return body

        def _error(self, status: int, message: str) -> None:
            self._reply_json(status, {"error": message, "status": status})

        def _reply_json(
            self,
            status: int,
            payload: dict,
            headers: Optional[dict] = None,
        ) -> None:
            self._reply(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json",
                headers=headers,
            )

        def _reply(
            self,
            status: int,
            body: bytes,
            content_type: str,
            headers: Optional[dict] = None,
        ) -> None:
            if 200 <= status < 300:
                _STATUS_2XX.inc()
            elif 400 <= status < 500:
                _STATUS_4XX.inc()
            elif status >= 500:
                _STATUS_5XX.inc()
            _BYTES_OUT.inc(len(body))
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

    return Handler


def _base_for_dtype(dtype: np.dtype) -> str:
    """The registered base type matching a numpy dtype (for auto-create)."""
    for name in known_base_types():
        candidate = base_type(name)
        if candidate.dtype.fields is None and candidate.dtype == dtype:
            return name
    raise _HttpError(
        400,
        f"no base type matches dtype {dtype.str!r}; pass an explicit "
        f"base parameter (known: {', '.join(known_base_types())})",
    )
