"""Wire formats of the tile service (DESIGN §14).

Three interchangeable representations of one range read, negotiated via
the ``Accept`` header of ``GET .../slice``:

* ``application/octet-stream`` (**raw**) — the dense result array as
  C-order bytes; shape, dtype, and resolved box ride in ``X-Repro-*``
  headers.  What :meth:`Database.read` returns, byte for byte.
* ``application/x-repro-tiles`` (**tiles**) — the stored tiles
  intersecting the box, shipped *compressed exactly as stored* (the
  server never decodes); the client decodes and composes.  This is the
  RasDaMan/tiled-style transfer format: bytes moved are proportional to
  stored (compressed) tile bytes, not to the dense result.
* ``application/json`` (**json**) — nested lists, for humans and curl.

All three reassemble byte-identically because composition follows the
same rule as :meth:`StoredMDD.read`: a default-filled dense array, each
intersecting tile's overlap copied in, virtual tiles contributing
defaults.  :func:`assemble` is that rule, shared by the client.

**Tile-frame framing** (format ``tiles``)::

    magic  b"RTF1"
    u32 BE header length, then a JSON header
        {"box","shape","dtype","default","count"}
    count frames, each:
        u32 BE meta length, then JSON meta
            {"domain","codec","virtual","nbytes"}
        nbytes of stored payload (absent for virtual tiles)

**ETags** are strong and epoch-keyed: ``"<collection>/<object>@<epoch>"``
where ``<epoch>`` is the MVCC epoch at which the object's current
version was published (:attr:`ObjectVersion.epoch`).  A commit that
touches the object publishes a new version at a higher epoch, changing
the ETag; commits to *other* objects do not, so unchanged objects keep
revalidating with 304 indefinitely.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.errors import ReproError
from repro.core.geometry import MInterval
from repro.storage.compression import decompress

MAGIC = b"RTF1"

FORMAT_RAW = "application/octet-stream"
FORMAT_TILES = "application/x-repro-tiles"
FORMAT_JSON = "application/json"

#: Accept values (lowercased substrings) resolving to each format.
_ACCEPT_ALIASES = {
    FORMAT_RAW: ("application/octet-stream",),
    FORMAT_TILES: ("application/x-repro-tiles",),
    FORMAT_JSON: ("application/json", "text/json"),
}


class WireError(ReproError):
    """Malformed wire-format input (maps to HTTP 400)."""


def parse_box(text: str) -> MInterval:
    """Parse a ``box`` query parameter; :class:`WireError` on bad input."""
    try:
        return MInterval.parse(text)
    except (ValueError, ReproError) as exc:
        raise WireError(f"malformed box {text!r}: {exc}") from None


def negotiate(accept: Optional[str]) -> Optional[str]:
    """Pick a response format from an ``Accept`` header.

    Missing headers and wildcard accepts resolve to the raw format;
    an Accept that names none of the supported types returns ``None``
    (the server answers 406).
    """
    if accept is None or not accept.strip():
        return FORMAT_RAW
    lowered = accept.lower()
    for fmt, aliases in _ACCEPT_ALIASES.items():
        if any(alias in lowered for alias in aliases):
            return fmt
    if "*/*" in lowered or "application/*" in lowered:
        return FORMAT_RAW
    return None


def dtype_token(dtype: np.dtype) -> str:
    """A dtype as its portable array-interface string (``|u1``, ``<i4``)."""
    if dtype.fields is not None:
        raise WireError(
            f"structured base types are not wire-transferable ({dtype})"
        )
    return dtype.str


def parse_dtype(token: str) -> np.dtype:
    try:
        return np.dtype(token)
    except TypeError as exc:
        raise WireError(f"bad dtype token {token!r}: {exc}") from None


def default_token(value: object) -> Union[int, float]:
    """The base type's default cell as a JSON-safe number."""
    if isinstance(value, (int, float)):
        return value
    return float(np.asarray(value).item())


def etag_for(collection: str, name: str, epoch: int) -> str:
    """Strong ETag of one published object version."""
    return f'"{collection}/{name}@{epoch}"'


def epoch_from_etag(etag: str) -> int:
    """The publication epoch an ETag encodes; :class:`WireError` if not ours."""
    try:
        return int(etag.strip().strip('"').rsplit("@", 1)[1])
    except (IndexError, ValueError):
        raise WireError(f"not a repro ETag: {etag!r}") from None


def etag_matches(etag: str, if_none_match: Optional[str]) -> bool:
    """RFC 7232 ``If-None-Match`` comparison (list form and ``*``)."""
    if if_none_match is None:
        return False
    candidates = {token.strip() for token in if_none_match.split(",")}
    return "*" in candidates or etag in candidates


# ---------------------------------------------------------------------------
# Tile frames
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TileFrame:
    """One stored tile on the wire: its domain and stored payload."""

    domain: MInterval
    codec: str
    payload: bytes
    virtual: bool = False


def encode_frames(
    box: MInterval,
    dtype: np.dtype,
    default: object,
    frames: list[TileFrame],
) -> bytes:
    """Serialise a tile-frame response body."""
    header = json.dumps(
        {
            "box": str(box),
            "shape": list(box.shape),
            "dtype": dtype_token(dtype),
            "default": default_token(default),
            "count": len(frames),
        }
    ).encode("utf-8")
    parts = [MAGIC, struct.pack(">I", len(header)), header]
    for frame in frames:
        meta = json.dumps(
            {
                "domain": str(frame.domain),
                "codec": frame.codec,
                "virtual": frame.virtual,
                "nbytes": 0 if frame.virtual else len(frame.payload),
            }
        ).encode("utf-8")
        parts.append(struct.pack(">I", len(meta)))
        parts.append(meta)
        if not frame.virtual:
            parts.append(frame.payload)
    return b"".join(parts)


def decode_frames(body: bytes) -> tuple[dict, list[TileFrame]]:
    """Parse a tile-frame body into its header dict and frames."""
    if body[: len(MAGIC)] != MAGIC:
        raise WireError("tile-frame body lacks the RTF1 magic")
    offset = len(MAGIC)

    def take(n: int) -> bytes:
        nonlocal offset
        if offset + n > len(body):
            raise WireError("truncated tile-frame body")
        chunk = body[offset : offset + n]
        offset += n
        return chunk

    def take_json() -> dict:
        (length,) = struct.unpack(">I", take(4))
        try:
            return json.loads(take(length).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"bad tile-frame header: {exc}") from None

    header = take_json()
    frames: list[TileFrame] = []
    for _ in range(int(header.get("count", 0))):
        meta = take_json()
        virtual = bool(meta.get("virtual"))
        payload = b"" if virtual else take(int(meta["nbytes"]))
        frames.append(
            TileFrame(
                domain=MInterval.parse(meta["domain"]),
                codec=str(meta["codec"]),
                payload=payload,
                virtual=virtual,
            )
        )
    if offset != len(body):
        raise WireError(
            f"tile-frame body has {len(body) - offset} trailing byte(s)"
        )
    return header, frames


def assemble(
    box: MInterval,
    dtype: np.dtype,
    default: object,
    frames: list[TileFrame],
) -> np.ndarray:
    """Compose decoded frames into the dense result array.

    The exact composition rule of :meth:`StoredMDD.read`: default-filled
    output, each real tile's overlap copied in, virtual tiles (and
    uncovered space) left at the default — so a client assembling frames
    is byte-identical to the server reading directly.
    """
    out = np.zeros(box.shape, dtype=dtype)
    default_value = np.asarray(default, dtype=dtype)
    if default_value != 0:
        out[...] = default_value
    for frame in frames:
        part = frame.domain.intersection(box)
        if part is None or frame.virtual:
            continue
        raw = decompress(frame.payload, frame.codec)
        expected = frame.domain.cell_count * dtype.itemsize
        if len(raw) != expected:
            raise WireError(
                f"tile {frame.domain} decoded to {len(raw)} bytes, "
                f"expected {expected}"
            )
        tile = np.frombuffer(raw, dtype=dtype).reshape(frame.domain.shape)
        out[part.to_slices(box.lowest)] = tile[
            part.to_slices(frame.domain.lowest)
        ]
    return out
