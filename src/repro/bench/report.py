"""Plain-text report tables in the paper's format.

Benchmarks print their reproduction of each table/figure through these
helpers so the harness output can be compared side by side with the
published numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.query.timing import QueryTiming


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_rows(
    speedups: Mapping[str, Mapping[str, float]],
    components: Sequence[str] = ("t_o", "t_totalaccess", "t_totalcpu"),
) -> str:
    """The paper's Table 4/6 layout: one block per component, queries as
    columns."""
    queries = list(speedups)
    blocks = []
    for component in components:
        rows = [[q for q in queries], [f"{speedups[q][component]:.1f}" for q in queries]]
        blocks.append(
            format_table(
                headers=[component] + [""] * (len(queries) - 1),
                rows=rows,
            )
        )
    return "\n\n".join(blocks)


def timing_components_rows(
    timings: Mapping[str, QueryTiming],
) -> str:
    """Per-query time components (Figure 7/8 data as a table, ms)."""
    headers = ["query", "t_ix", "t_o", "t_cpu", "t_totalaccess", "t_totalcpu"]
    rows = [
        [
            name,
            f"{t.t_ix:.1f}",
            f"{t.t_o:.1f}",
            f"{t.t_cpu:.1f}",
            f"{t.t_totalaccess:.1f}",
            f"{t.t_totalcpu:.1f}",
        ]
        for name, t in timings.items()
    ]
    return format_table(headers, rows)
