"""Plain-text report tables in the paper's format.

Benchmarks print their reproduction of each table/figure through these
helpers so the harness output can be compared side by side with the
published numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.query.timing import QueryTiming


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_rows(
    speedups: Mapping[str, Mapping[str, float]],
    components: Sequence[str] = ("t_o", "t_totalaccess", "t_totalcpu"),
) -> str:
    """The paper's Table 4/6 layout: one block per component, queries as
    columns."""
    queries = list(speedups)
    blocks = []
    for component in components:
        rows = [[q for q in queries], [f"{speedups[q][component]:.1f}" for q in queries]]
        blocks.append(
            format_table(
                headers=[component] + [""] * (len(queries) - 1),
                rows=rows,
            )
        )
    return "\n\n".join(blocks)


def timing_components_rows(
    timings: Mapping[str, QueryTiming],
) -> str:
    """Per-query time components (Figure 7/8 data as a table, ms)."""
    headers = ["query", "t_ix", "t_o", "t_cpu", "t_totalaccess", "t_totalcpu"]
    rows = [
        [
            name,
            f"{t.t_ix:.1f}",
            f"{t.t_o:.1f}",
            f"{t.t_cpu:.1f}",
            f"{t.t_totalaccess:.1f}",
            f"{t.t_totalcpu:.1f}",
        ]
        for name, t in timings.items()
    ]
    return format_table(headers, rows)


def activity_rows(
    timings: Mapping[str, QueryTiming],
    title: Optional[str] = None,
) -> str:
    """Per-query storage activity: tiles, pages, bytes, pool behaviour.

    The buffer-pool columns report the counters the pool has always kept
    but the reports never showed; without a pool they are all zero and
    the hit rate reads 0%.
    """
    headers = [
        "query", "tiles", "pages", "KB", "pool hit", "pool miss",
        "evict", "hit%",
    ]
    rows = [
        [
            name,
            str(t.tiles_read),
            str(t.pages_read),
            f"{t.bytes_read / 1024:.1f}",
            str(t.pool_hits),
            str(t.pool_misses),
            str(t.pool_evictions),
            f"{t.pool_hit_rate * 100:.0f}",
        ]
        for name, t in timings.items()
    ]
    return format_table(headers, rows, title=title)


def pool_summary_rows(runs: Mapping[str, object]) -> str:
    """Per-scheme buffer-pool totals (``runs`` maps name → SchemeRun)."""
    headers = ["scheme", "capacity KB", "hits", "misses", "evict", "hit%"]
    rows = []
    for name, run in runs.items():
        pool = run.database.pool  # type: ignore[attr-defined]
        if pool is None:
            rows.append([name, "-", "0", "0", "0", "-"])
        else:
            rows.append(
                [
                    name,
                    f"{pool.capacity_bytes / 1024:.0f}",
                    str(pool.hits),
                    str(pool.misses),
                    str(pool.evictions),
                    f"{pool.hit_rate * 100:.0f}",
                ]
            )
    return format_table(headers, rows, title="Buffer pool activity")


def snapshot_rows(snapshot: Mapping[str, object]) -> str:
    """Render an ``obs`` registry snapshot as report tables."""
    blocks = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [[name, f"{value:g}"] for name, value in counters.items()]
        blocks.append(format_table(["counter", "value"], rows))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [[name, f"{value:g}"] for name, value in gauges.items()]
        blocks.append(format_table(["gauge", "value"], rows))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = [
            [
                name,
                str(hist["count"]),
                f"{hist['sum']:.2f}",
                f"{hist['sum'] / hist['count']:.3f}" if hist["count"] else "-",
            ]
            for name, hist in histograms.items()
        ]
        blocks.append(
            format_table(["histogram", "count", "sum_ms", "mean_ms"], rows)
        )
    if not blocks:
        return "(registry is empty)"
    return "\n\n".join(blocks)
