"""Observability-overhead benchmark: enabled vs disabled vs no-obs floor.

The obs layer's contract is that a *disabled* registry costs one branch
per instrument call.  This bench puts a number on that claim.  It loads
the read-pipeline cube three times and runs the same query set under
three observability states:

* ``enabled``  — metrics and tracing on (the default);
* ``disabled`` — ``obs.disable()``: every instrument call hits its
  enabled-flag check and returns;
* ``noop``     — the no-obs-build floor: obs disabled **and** every
  instrument method (``Counter.inc``, ``Gauge.set/inc/dec``,
  ``Histogram.observe``, ``Tracer.span``) monkeypatched to an empty
  body.  This is the closest a Python build can get to compiling the
  instrumentation out, so ``disabled - noop`` isolates the cost of the
  flag checks themselves.

Modes are interleaved run by run (mode A run 1, mode B run 1, ... then
run 2) so machine drift hits all three equally, and per-query walls are
min-of-runs.  The gated verdict is ``disabled_overhead_ok``: the
disabled walls must stay within ``OVERHEAD_PCT`` of the noop floor
(with a small absolute floor — on a quiet query set, percent-of-almost-
nothing is all noise).  Byte identity across all three modes and
equality of the modelled charges are gated too: observability must
never change results.  The enabled overhead is reported but not gated —
tracing does real work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.pipeline import QUERIES, _load_cube
from repro.bench.report import format_table
from repro.core.geometry import MInterval

#: Gated ceiling on (disabled - noop) / noop, in percent.
OVERHEAD_PCT = 2.0
#: Absolute slack (ms, on the summed query set) under which the percent
#: gate does not bind — jitter floor for fast runs.
OVERHEAD_ABS_MS = 5.0

MODES = ("enabled", "disabled", "noop")


@contextmanager
def _noop_instruments():
    """Patch every instrument method to an empty body (no-obs floor)."""
    from repro.obs import metrics as m
    from repro.obs import trace as t

    saved = (
        m.Counter.inc,
        m.Gauge.set,
        m.Gauge.inc,
        m.Gauge.dec,
        m.Histogram.observe,
        t.Tracer.span,
    )

    def _noop(self, *args, **kwargs):
        pass

    def _null_span(self, name, *, parent=None, **attrs):
        return t.NULL_SPAN

    m.Counter.inc = _noop
    m.Gauge.set = _noop
    m.Gauge.inc = _noop
    m.Gauge.dec = _noop
    m.Histogram.observe = _noop
    t.Tracer.span = _null_span
    try:
        yield
    finally:
        (
            m.Counter.inc,
            m.Gauge.set,
            m.Gauge.inc,
            m.Gauge.dec,
            m.Histogram.observe,
            t.Tracer.span,
        ) = saved


@contextmanager
def _mode_state(mode: str):
    """Observability state for one measured burst, restored afterwards."""
    was_enabled = obs.enabled()
    try:
        if mode == "enabled":
            obs.enable()
            yield
        elif mode == "disabled":
            obs.disable()
            yield
        elif mode == "noop":
            obs.disable()
            with _noop_instruments():
                yield
        else:  # pragma: no cover - caller bug
            raise ValueError(f"unknown mode {mode!r}")
    finally:
        if was_enabled:
            obs.enable()
        else:
            obs.disable()


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(array.tobytes(order="C")).hexdigest()


def run_obs_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Measure the three observability states and return the report."""
    cubes = {mode: _load_cube(io_workers=1) for mode in MODES}
    regions = {name: MInterval.parse(spec) for name, spec in QUERIES.items()}

    walls: Dict[str, Dict[str, List[float]]] = {
        mode: {query: [] for query in QUERIES} for mode in MODES
    }
    samples: Dict[str, Dict[str, dict]] = {mode: {} for mode in MODES}

    for _ in range(max(1, runs)):
        for mode in MODES:
            database, mdd = cubes[mode]
            with _mode_state(mode):
                for query, region in regions.items():
                    database.reset_clock()
                    started = time.perf_counter()
                    array, timing = mdd.read(region)
                    elapsed = (time.perf_counter() - started) * 1000.0
                    walls[mode][query].append(elapsed)
                    samples[mode][query] = {
                        "digest": _digest(array),
                        "timing": timing.as_dict(),
                    }

    modes_report: Dict[str, Dict[str, dict]] = {}
    for mode in MODES:
        modes_report[mode] = {}
        for query in QUERIES:
            series = walls[mode][query]
            modes_report[mode][query] = {
                "wall_ms_min": float(np.min(series)),
                "wall_ms_mean": float(np.mean(series)),
                **samples[mode][query],
            }

    def total_min_wall(mode: str) -> float:
        return sum(modes_report[mode][q]["wall_ms_min"] for q in QUERIES)

    totals = {mode: total_min_wall(mode) for mode in MODES}
    noop_total = totals["noop"]

    def overhead_pct(mode: str) -> float:
        if noop_total <= 0.0:
            return 0.0
        return (totals[mode] - noop_total) / noop_total * 100.0

    disabled_ok = totals["disabled"] <= max(
        noop_total * (1.0 + OVERHEAD_PCT / 100.0),
        noop_total + OVERHEAD_ABS_MS,
    )
    byte_identical = all(
        modes_report["enabled"][q]["digest"]
        == modes_report["disabled"][q]["digest"]
        == modes_report["noop"][q]["digest"]
        for q in QUERIES
    )
    charges_equal = all(
        modes_report["enabled"][q]["timing"][field]
        == modes_report["disabled"][q]["timing"][field]
        == modes_report["noop"][q]["timing"][field]
        for q in QUERIES
        for field in ("t_o", "tiles_read", "pages_read", "index_nodes")
    )

    # The quantile satellite's consumer: per-histogram p50/p99 straight
    # from the live registry (the enabled runs populated it).
    obs.enable()
    snapshot = obs.snapshot()
    quantiles = {
        name: {"p50": data.get("p50"), "p99": data.get("p99")}
        for name, data in snapshot.get("histograms", {}).items()
        if data.get("count")
    }

    report = {
        "label": "obs",
        "created_unix": time.time(),
        "config": {"runs": runs, "queries": dict(QUERIES)},
        "modes": modes_report,
        "identity": {
            "byte_identical": byte_identical,
            "modelled_charges_equal": charges_equal,
            "disabled_overhead_ok": disabled_ok,
        },
        "performance": {
            "enabled_total_ms": totals["enabled"],
            "disabled_total_ms": totals["disabled"],
            "noop_total_ms": noop_total,
            "enabled_overhead_pct": overhead_pct("enabled"),
            "disabled_overhead_pct": overhead_pct("disabled"),
            "gate_pct": OVERHEAD_PCT,
            "gate_abs_ms": OVERHEAD_ABS_MS,
        },
        "latency_quantiles": quantiles,
        "registry": snapshot,
    }
    for database, _mdd in cubes.values():
        database.close()
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_obs.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width mode comparison for the CLI."""
    headers = ["query", "mode", "wall ms min", "wall ms mean", "t_o"]
    rows = []
    for query in report["config"]["queries"]:
        for mode in MODES:
            entry = report["modes"][mode][query]
            rows.append([
                query if mode == MODES[0] else "",
                mode,
                f"{entry['wall_ms_min']:.2f}",
                f"{entry['wall_ms_mean']:.2f}",
                f"{entry['timing']['t_o']:.2f}",
            ])
    perf = report["performance"]
    rows.append([
        "total", "", "", "",
        f"dis +{perf['disabled_overhead_pct']:.2f}% "
        f"en +{perf['enabled_overhead_pct']:.2f}%",
    ])
    return format_table(
        headers, rows, title="observability overhead (min over runs)"
    )
