"""Write-pipeline benchmark: serial vs batched vs parallel ingest.

The write-side sibling of :mod:`repro.bench.pipeline`.  It ingests the
Section 6.1 sales cube into a fresh ``wal+fsync`` file-backed database
three ways and compares wall clock, WAL traffic, and on-disk outcome:

* ``serial`` — one :meth:`StoredMDD.insert_tile` per tile: the
  pre-batching write path, one WAL commit **and one fsync per tile**;
* ``batched`` — one :meth:`StoredMDD.load_array` call: the whole cube is
  one group-committed transaction (single fsync), encoded through the
  ingest pipeline and flushed as coalesced page runs;
* ``parallel`` — the same, with ``io_workers > 1`` so tile encoding fans
  out over the worker pool.

All three modes cluster tiles in Z-order of their lower corners
(:func:`~repro.core.order.z_order_key` shifted to the cube's origin), so
neighbouring tiles land on neighbouring pages and the batched flush
coalesces maximally.  The acceptance verdicts — byte-identical page
files, equal stored bytes, identical read-back digests, clean fsck, and
a >= 10x fsync reduction — are deterministic and live in the
``identity`` section of the ``BENCH_ingest.json`` artifact; wall-clock
speedups live in ``performance`` and are reported but never gated on in
CI (they vary with the host).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.bench.salescube import (
    SALES_DOMAIN,
    generate_sales_data,
    sales_mdd_type,
)
from repro.core.mdd import Tile
from repro.core.order import shifted_key, z_order_key
from repro.storage.catalog import PAGES_NAME, create_database, save_database
from repro.storage.fsck import fsck_database
from repro.tiling.aligned import RegularTiling
from repro.tiling.base import KB

TILE_BYTES = 32 * KB  # Reg32K, the paper's reference scheme

#: mode name -> worker count ("serial" uses insert_tile per tile).
MODES: Dict[str, int] = {"serial": 1, "batched": 1, "parallel": 4}


def _tile_key():
    return shifted_key(z_order_key, SALES_DOMAIN.lowest)


def _sorted_tiles(database, data: np.ndarray) -> List[Tile]:
    spec = RegularTiling(TILE_BYTES).tile(
        SALES_DOMAIN, sales_mdd_type().cell_size
    )
    ordered = sorted(spec.tiles, key=lambda d: database.tile_key(d.lowest))
    origin = SALES_DOMAIN.lowest
    return [Tile(d, data[d.to_slices(origin)]) for d in ordered]


def _ingest_once(
    directory: Path, mode: str, io_workers: int, data: np.ndarray
) -> dict:
    """One ingest run: build, measure the store phase, audit the result."""
    database = create_database(
        directory,
        durability="wal+fsync",
        compression=True,
        io_workers=io_workers,
        tile_key=_tile_key(),
    )
    mdd = database.create_object("bench", sales_mdd_type(), "sales")
    tiles = _sorted_tiles(database, data)
    database.wal.stats.reset()  # measure the ingest, not the setup
    started = time.perf_counter()
    if mode == "serial":
        for tile in tiles:
            mdd.insert_tile(tile)
    else:
        mdd.write_tiles(tiles)
    wall_ms = (time.perf_counter() - started) * 1000.0
    stats = database.wal.stats
    # snapshot the tallies now: reset_clock() zeroes the WAL stats too
    fsyncs, commits, wal_bytes = stats.fsyncs, stats.commits, stats.bytes_written
    database.reset_clock()
    array, _timing = mdd.read(SALES_DOMAIN)
    result = {
        "wall_ms": wall_ms,
        "fsyncs": fsyncs,
        "wal_commits": commits,
        "wal_bytes": wal_bytes,
        "tile_count": len(mdd.tile_entries()),
        "logical_bytes": int(data.nbytes),
        "stored_bytes": mdd.stored_bytes(),
        "result_digest": hashlib.sha256(array.tobytes(order="C")).hexdigest(),
    }
    save_database(database, directory)
    database.close()
    result["pages_sha256"] = hashlib.sha256(
        (directory / PAGES_NAME).read_bytes()
    ).hexdigest()
    fsck = fsck_database(directory)
    result["fsck_ok"] = fsck.ok
    result["fsck_issues"] = [str(issue) for issue in fsck.issues]
    return result


def _measure_mode(
    workspace: Path, mode: str, io_workers: int, runs: int, data: np.ndarray
) -> dict:
    walls: List[float] = []
    last: dict = {}
    for run in range(max(1, runs)):
        directory = workspace / f"{mode}_{run}"
        last = _ingest_once(directory, mode, io_workers, data)
        walls.append(last["wall_ms"])
        shutil.rmtree(directory, ignore_errors=True)
    last["wall_ms"] = float(np.mean(walls))
    last["wall_ms_min"] = float(np.min(walls))
    return last


def run_ingest_bench(
    runs: int = 3,
    io_workers: int = 4,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the three ingest modes and return the comparison dict."""
    data = generate_sales_data()
    modes: Dict[str, dict] = {}
    with obs.span("bench.ingest", runs=runs, io_workers=io_workers):
        with tempfile.TemporaryDirectory(prefix="bench_ingest_") as tmp:
            workspace = Path(tmp)
            for mode, workers in MODES.items():
                workers = io_workers if mode == "parallel" else workers
                modes[mode] = _measure_mode(
                    workspace, mode, workers, runs, data
                )
    report = {
        "label": "ingest",
        "created_unix": time.time(),
        "config": {
            "domain": str(SALES_DOMAIN),
            "tile_bytes": TILE_BYTES,
            "runs": runs,
            "io_workers": io_workers,
            "durability": "wal+fsync",
            "clustering": "z-order (shifted to the cube origin)",
        },
        "modes": modes,
        "identity": _verdicts(modes),
        "performance": _performance(modes),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(modes: Dict[str, dict]) -> dict:
    """Deterministic acceptance checks (gated on in CI)."""
    serial = modes["serial"]
    others = [modes[m] for m in modes if m != "serial"]
    batched = modes["batched"]
    return {
        "pages_byte_identical": all(
            m["pages_sha256"] == serial["pages_sha256"] for m in others
        ),
        "stored_bytes_equal": all(
            m["stored_bytes"] == serial["stored_bytes"] for m in others
        ),
        "read_back_identical": all(
            m["result_digest"] == serial["result_digest"] for m in others
        ),
        "tile_count_equal": all(
            m["tile_count"] == serial["tile_count"] for m in others
        ),
        "fsck_clean": all(m["fsck_ok"] for m in modes.values()),
        "fsync_amortized_10x": (
            serial["fsyncs"] >= 10 * max(1, batched["fsyncs"])
        ),
    }


def _performance(modes: Dict[str, dict]) -> dict:
    """Wall-clock comparison (reported, never gated on in CI)."""
    serial = modes["serial"]["wall_ms_min"]
    batched = modes["batched"]["wall_ms_min"]
    parallel = modes["parallel"]["wall_ms_min"]
    return {
        "speedup_batched": serial / batched if batched else float("inf"),
        "speedup_parallel": serial / parallel if parallel else float("inf"),
        "speedup_2x": parallel > 0 and serial / parallel >= 2.0,
    }


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_ingest.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width mode comparison for the CLI."""
    headers = [
        "mode", "wall ms", "fsyncs", "commits", "wal MB", "stored MB",
        "tiles", "speedup",
    ]
    serial_wall = report["modes"]["serial"]["wall_ms_min"]
    rows = []
    for mode, entry in report["modes"].items():
        speedup = serial_wall / entry["wall_ms_min"] if entry["wall_ms_min"] else 0.0
        rows.append([
            mode,
            f"{entry['wall_ms']:.1f}",
            str(entry["fsyncs"]),
            str(entry["wal_commits"]),
            f"{entry['wal_bytes'] / (1024 * 1024):.2f}",
            f"{entry['stored_bytes'] / (1024 * 1024):.2f}",
            str(entry["tile_count"]),
            f"{speedup:.2f}x",
        ])
    return format_table(
        headers, rows, title="ingest pipeline (sales cube, wal+fsync)"
    )
