"""Query-engine benchmark: planned aggregate pushdown vs materialize.

Loads the Section 6.1 sales cube with the value-friendly tiling of the
prune bench (tiles elongated along time, 3000 tiles) and runs the same
query set through both engine strategies:

* ``v1``       — the materialize-then-reduce path (``pushdown=False,
  prune=False``): the query box is composed in memory and reduced by the
  coordinator, the pre-PR-9 cost;
* ``pushdown`` — the planned path (the default): zone maps prune,
  stored synopses answer fully-covered tiles with zero decode, the rest
  are reduced to partials on the pipeline workers, and the coordinator
  combines partials in tile-id order without ever materializing the box.

The sweep covers all five condensers over the whole cube, threshold
predicates at low/medium selectivity, and OLAP GROUP BY roll-ups over
the paper's category partitions (2P and 3P).

The acceptance verdicts are deterministic and live in ``identity``
(gated in CI): every configuration must produce a **bitwise-identical**
result under both strategies, every pushdown run must report peak
working memory bounded by ``io_workers x one tile`` (the box is never
materialized), and the full-cube condensers must be answered from
synopses with zero decode.  Modelled-time speedups (``t_o +
t_ix_pages``, deterministic) live in ``performance`` and are reported
but never gated on; the headline figure is the speedup at <= 1%
selectivity, where pruning plus pushdown drop nearly all fetch work.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.bench.salescube import (
    DISTRICT_BOUNDARIES,
    PRODUCT_CLASS_BOUNDARIES,
    SALES_DOMAIN,
    generate_sales_data,
    month_boundaries,
    sales_mdd_type,
)
from repro.index.zonemap import AGG_FUNCS, CellPredicate
from repro.query.engine import QueryEngine
from repro.storage.tilestore import Database
from repro.tiling.directional import category_intervals

#: Same tiling as the prune bench: full time axis, one product x two
#: stores per tile -> 3000 tiles with strongly distinct value ranges.
TILE_SHAPE = (730, 1, 2)

#: Pipeline width: partial aggregation fans out over this many workers,
#: which also bounds the peak decoded working set (workers x one tile).
IO_WORKERS = 4

#: Target match fractions for the predicated-aggregate sweep.
SELECTIVITIES = (0.001, 0.01, 0.25)

#: Condensers applied at every selectivity point.
PREDICATED_OPS = ("count_cells", "add_cells")


def _load_cube(data: np.ndarray) -> tuple[Database, object]:
    from repro.core.mdd import Tile
    from repro.tiling.base import grid_partition

    database = Database(io_workers=IO_WORKERS)
    mdd = database.create_object("bench", sales_mdd_type(), "sales")
    origin = SALES_DOMAIN.lowest
    tiles = [
        Tile(box, data[box.to_slices(origin)])
        for box in grid_partition(SALES_DOMAIN, TILE_SHAPE)
    ]
    mdd.write_tiles(tiles)
    database.reset_clock()
    return database, mdd


def _group_specs() -> Dict[str, dict]:
    """The GROUP BY roll-ups: paper category partitions (Table 1)."""
    low, high = SALES_DOMAIN.lowest, SALES_DOMAIN.highest
    months = category_intervals(month_boundaries(), low[0], high[0])
    classes = category_intervals(PRODUCT_CLASS_BOUNDARIES, low[1], high[1])
    districts = category_intervals(DISTRICT_BOUNDARIES, low[2], high[2])
    return {
        "rollup_2p": {
            "op": "add_cells",
            "spec": {1: classes, 2: districts},
            "groups": len(classes) * len(districts),
        },
        "rollup_3p": {
            "op": "add_cells",
            "spec": {0: months, 1: classes, 2: districts},
            "groups": len(months) * len(classes) * len(districts),
        },
    }


def _thresholds(data: np.ndarray) -> Dict[str, dict]:
    """One ``> t`` predicate per target selectivity (quantile-derived)."""
    points: Dict[str, dict] = {}
    for target in SELECTIVITIES:
        threshold = int(np.quantile(data, 1.0 - target))
        points[f"{target:g}"] = {
            "target_selectivity": target,
            "threshold": threshold,
            "actual_selectivity": float((data > threshold).mean()),
        }
    return points


def _digest(value) -> str:
    """Bitwise digest of a result: exact repr for scalars, raw bytes
    for GROUP BY value cubes (float64, C order)."""
    if isinstance(value, np.ndarray):
        payload = value.tobytes(order="C")
    else:
        payload = repr(value).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _entry(result, walls: List[float]) -> dict:
    timing = result.timing
    value = result.value
    return {
        "digest": _digest(value),
        "value": (
            value.tolist() if isinstance(value, np.ndarray) else value
        ),
        "pushed": bool(result.plan.pushed) if result.plan else False,
        "wall_ms": float(np.mean(walls)),
        "wall_ms_min": float(np.min(walls)),
        "modelled_ms": timing.t_o + timing.t_ix_pages,
        "tiles_read": timing.tiles_read,
        "tiles_pruned": timing.tiles_pruned,
        "tiles_synopsis_answered": timing.tiles_synopsis_answered,
        "tiles_partial_agg": timing.tiles_partial_agg,
        "peak_partial_bytes": timing.peak_partial_bytes,
        "bytes_read": timing.bytes_read,
        "timing": timing.as_dict(),
    }


def _run_config(engine, mdd, config: dict, pushdown: bool, runs: int) -> dict:
    """One configuration under one strategy, wall-averaged over runs."""
    walls: List[float] = []
    result = None
    for _ in range(max(1, runs)):
        started = time.perf_counter()
        if config["kind"] == "group_by":
            result = engine.group_by_query(
                mdd,
                SALES_DOMAIN,
                config["op"],
                config["spec"],
                pushdown=pushdown,
                prune=pushdown,
            )
        else:
            result = engine.aggregate_query(
                mdd,
                SALES_DOMAIN,
                config["op"],
                predicate=config.get("predicate"),
                pushdown=pushdown,
                prune=pushdown,
            )
        walls.append((time.perf_counter() - started) * 1000.0)
    return _entry(result, walls)


def _configs(points: Dict[str, dict]) -> Dict[str, dict]:
    configs: Dict[str, dict] = {}
    for op in sorted(AGG_FUNCS):
        configs[f"agg_{op}"] = {"kind": "aggregate", "op": op}
    for point, meta in points.items():
        predicate = CellPredicate(">", meta["threshold"])
        for op in PREDICATED_OPS:
            configs[f"sel_{point}_{op}"] = {
                "kind": "aggregate",
                "op": op,
                "predicate": predicate,
                "selectivity": meta["target_selectivity"],
            }
    for name, rollup in _group_specs().items():
        configs[name] = {
            "kind": "group_by",
            "op": rollup["op"],
            "spec": rollup["spec"],
            "groups": rollup["groups"],
        }
    return configs


def run_query_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the aggregate/GROUP BY sweep and return the comparison dict."""
    data = generate_sales_data()
    with obs.span("bench.query", runs=runs):
        database, mdd = _load_cube(data)
        engine = QueryEngine(database)
        points = _thresholds(data)
        configs = _configs(points)
        modes: Dict[str, Dict[str, dict]] = {"v1": {}, "pushdown": {}}
        for name, config in configs.items():
            modes["v1"][name] = _run_config(
                engine, mdd, config, pushdown=False, runs=runs
            )
            modes["pushdown"][name] = _run_config(
                engine, mdd, config, pushdown=True, runs=runs
            )
        tile_count = len(mdd.tile_entries())
        tile_bytes = max(
            entry.domain.cell_count for entry in mdd.tile_entries()
        ) * mdd.mdd_type.base.dtype.itemsize
        database.close()
    report = {
        "label": "query",
        "created_unix": time.time(),
        "config": {
            "domain": str(SALES_DOMAIN),
            "tile_shape": list(TILE_SHAPE),
            "tile_count": tile_count,
            "io_workers": IO_WORKERS,
            "max_tile_bytes": tile_bytes,
            "runs": runs,
            "selectivities": list(SELECTIVITIES),
            "points": points,
            "rollups": {
                name: {"op": r["op"], "groups": r["groups"]}
                for name, r in _group_specs().items()
            },
        },
        "modes": modes,
        "identity": _verdicts(modes, tile_bytes),
        "performance": _performance(modes),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(modes: Dict[str, Dict[str, dict]], tile_bytes: int) -> dict:
    """Deterministic acceptance checks (gated on in CI)."""
    push = modes["pushdown"]
    return {
        "byte_identical_all": all(
            push[name]["digest"] == entry["digest"]
            for name, entry in modes["v1"].items()
        ),
        "pushdown_used_everywhere": all(
            entry["pushed"] for entry in push.values()
        ),
        "v1_never_pushes": all(
            not entry["pushed"] for entry in modes["v1"].values()
        ),
        "peak_bounded_by_worker_tiles": all(
            entry["peak_partial_bytes"] <= IO_WORKERS * tile_bytes
            for entry in push.values()
        ),
        "full_cube_condensers_zero_decode": all(
            push[f"agg_{op}"]["tiles_read"] == 0 for op in sorted(AGG_FUNCS)
        ),
    }


def _performance(modes: Dict[str, Dict[str, dict]]) -> dict:
    """Modelled-time ratios (deterministic, reported but not CI-gated)."""
    out: dict = {}
    low_speedups = []
    for name, v1 in modes["v1"].items():
        push = modes["pushdown"][name]
        speedup = (
            v1["modelled_ms"] / push["modelled_ms"]
            if push["modelled_ms"]
            else float("inf")
        )
        out[f"modelled_speedup_{name}"] = speedup
        out[f"wall_speedup_{name}"] = (
            v1["wall_ms_min"] / push["wall_ms_min"]
            if push["wall_ms_min"]
            else float("inf")
        )
        if name.startswith("sel_") and _point_of(name) <= 0.01:
            low_speedups.append(speedup)
    out["modelled_speedup_3x_low_selectivity"] = bool(
        low_speedups and min(low_speedups) >= 3.0
    )
    return out


def _point_of(name: str) -> float:
    """Selectivity of a ``sel_<point>_<op>`` configuration name."""
    return float(name.split("_")[1])


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_query.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width strategy comparison for the CLI."""
    headers = [
        "config", "v1 ms", "push ms", "speedup", "pruned", "synopsis",
        "partials", "peak KB", "identical",
    ]
    rows = []
    for name, v1 in report["modes"]["v1"].items():
        push = report["modes"]["pushdown"][name]
        speedup = (
            v1["modelled_ms"] / push["modelled_ms"]
            if push["modelled_ms"]
            else float("inf")
        )
        rows.append([
            name,
            f"{v1['modelled_ms']:.2f}",
            f"{push['modelled_ms']:.2f}",
            f"{speedup:.1f}x",
            str(push["tiles_pruned"]),
            str(push["tiles_synopsis_answered"]),
            str(push["tiles_partial_agg"]),
            f"{push['peak_partial_bytes'] / 1024:.1f}",
            "yes" if push["digest"] == v1["digest"] else "NO",
        ])
    lines = [format_table(
        headers, rows,
        title="query engine v2: pushdown vs materialize (modelled ms)",
    )]
    lines.append("")
    bound = (
        report["config"]["io_workers"] * report["config"]["max_tile_bytes"]
    )
    box_bytes = (
        report["modes"]["v1"]["agg_add_cells"]["timing"]["cells_result"] * 4
    )
    lines.append(
        f"peak working-set bound: {report['config']['io_workers']} workers"
        f" x {report['config']['max_tile_bytes']} B/tile = {bound} B"
        f" (materialized box would be {box_bytes} B)"
    )
    return "\n".join(lines)
