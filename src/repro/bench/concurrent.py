"""Concurrent-access benchmark: snapshot readers scaling under a writer.

The concurrency sibling of :mod:`repro.bench.pipeline` /
:mod:`repro.bench.ingest` (DESIGN §11).  One writer thread commits
update transactions in a loop while 1, 2 and 4 reader threads each
perform a fixed number of snapshot reads of the contended region; the
mode's wall clock is the time for all readers to finish their quota, so
read throughput (reads/s) across the three modes is the scaling curve.

Two result sections, with the same CI contract as the other benches:

* ``identity`` — deterministic invariant verdicts, **gated** by
  ``benchmarks/check_regression.py``: every read's bytes digest-match a
  committed state (no torn reads — checked for every read, not
  sampled), snapshots are cross-object consistent (both objects always
  at the same committed epoch), and epoch reclamation converges to an
  empty limbo once the pins close;
* ``performance`` — throughput scaling, **reported but never gated**
  (CI machines often have 2 vCPUs): ``read_scaling_4r`` is the 4-reader
  vs 1-reader throughput ratio and ``read_scaling_2x`` its >= 2.0
  verdict.

Reads decompress zlib tiles (the codec releases the GIL), so scaling
measures the storage layer's actual read concurrency, not a Python
bytecode artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.core.cells import base_type
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.storage.disk import DiskParameters
from repro.storage.tilestore import Database
from repro.tiling.aligned import RegularTiling

DOMAIN = MInterval.parse("[0:511,0:511]")
#: every read and every commit covers all four 256x256 tiles, so a torn
#: commit leaves a cross-tile mix that digests to no committed state
REGION = DOMAIN
TILE_BYTES = 65536
OBJECTS = ("a", "b")
READER_COUNTS = (1, 2, 4)
READS_PER_READER = 24
MAX_COMMITS = 10_000
#: fraction of each BLOB read's modelled milliseconds actually slept
#: (DiskParameters.realtime_scale) — read latency has to exist in wall
#: time for reader overlap to be measurable, and overlappable waits are
#: what concurrent snapshot reads exploit even on a single core
REALTIME_SCALE = 0.15
#: distinct committed states the writer cycles through; 4-bit-entropy
#: cells compress ~2x, so reads spend their time in zlib decompress
#: (which releases the GIL) rather than on degenerate constant tiles
PAYLOAD_VARIANTS = 8


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()[:16]


def _payloads() -> List[np.ndarray]:
    """The committed-state cycle, deterministic across runs."""
    rng = np.random.default_rng(1999)
    return [
        rng.integers(0, 16, size=REGION.shape).astype(np.uint8)
        for _ in range(PAYLOAD_VARIANTS)
    ]


def _build_database(payloads: List[np.ndarray]) -> Database:
    """Fresh in-memory database: two four-tile objects, zlib-compressed.

    Both objects load inside one transaction so they publish at the same
    epoch — the cross-object consistency verdict then holds from the
    very first snapshot.
    """
    db = Database(
        compression=True,
        disk_parameters=DiskParameters(realtime_scale=REALTIME_SCALE),
    )
    mdd_type = MDDType("cube", base_type("char"), DOMAIN)
    with db.transaction():
        for name in OBJECTS:
            db.create_object("bench", mdd_type, name)
            db.collection("bench")[name].load_array(
                payloads[-1], RegularTiling(TILE_BYTES)
            )
    return db


def _writer(db: Database, payloads: List[np.ndarray],
            history: Dict[int, Dict[str, str]],
            stop: threading.Event, tally: dict):
    """Commits update transactions until the readers finish their quota.

    Each transaction rewrites the whole contended region of *both*
    objects from the payload cycle and records the post-commit digests
    under the publication epoch — the committed history every read is
    validated against.  The digests are precomputed: a full-region
    overwrite makes the committed state exactly the payload.
    """
    objs = [db.collection("bench")[name] for name in OBJECTS]
    digests = [_digest(payload) for payload in payloads]
    commits = 0
    while not stop.is_set() and commits < MAX_COMMITS:
        commits += 1
        committed = {}
        with db.transaction():
            for offset, (name, obj) in enumerate(zip(OBJECTS, objs)):
                variant = (commits + 3 * offset) % len(payloads)
                obj.update(REGION, payloads[variant])
                committed[name] = digests[variant]
        epoch = db.last_commit_epoch()
        assert epoch is not None
        history[epoch] = committed
    tally["commits"] = commits


def _reader(db: Database, out: List[tuple], reads: int):
    """Fixed quota of cross-object snapshot reads of the hot region."""
    for _ in range(reads):
        with db.snapshot() as snap:
            entry = []
            for name in OBJECTS:
                epoch = snap.version("bench", name).epoch
                array, _ = snap.read("bench", name, REGION)
                entry.append((name, epoch, _digest(array)))
            out.append(tuple(entry))


def _validate(history: Dict[int, Dict[str, str]],
              observations: List[tuple]) -> dict:
    """Every-read validation; returns the identity verdict inputs."""
    torn = 0
    inconsistent = 0
    for entry in observations:
        epochs = {epoch for _name, epoch, _digest in entry}
        if len(epochs) != 1:
            # setup commits both objects in one transaction and every
            # update rewrites both, so a consistent snapshot always has
            # one epoch across objects
            inconsistent += 1
        for name, epoch, content in entry:
            commit = history.get(epoch)
            if commit is None or commit.get(name) != content:
                torn += 1
    return {"torn_reads": torn, "inconsistent_snapshots": inconsistent}


def _run_mode(readers: int, runs: int) -> dict:
    """One scaling point: ``readers`` concurrent readers under a writer."""
    walls = []
    last_checks: dict = {}
    commits = 0
    payloads = _payloads()
    for _ in range(max(1, runs)):
        db = _build_database(payloads)
        history: Dict[int, Dict[str, str]] = {}
        # the setup transaction published both objects under one epoch
        with db.snapshot() as snap:
            epoch = snap.version("bench", OBJECTS[0]).epoch
            history[epoch] = {
                name: _digest(snap.read("bench", name, REGION)[0])
                for name in OBJECTS
            }
        stop = threading.Event()
        tally: dict = {}
        observations: List[tuple] = []
        writer = threading.Thread(
            target=_writer,
            args=(db, payloads, history, stop, tally),
            name="writer",
        )
        pool = [
            threading.Thread(
                target=_reader, args=(db, observations, READS_PER_READER),
                name=f"reader-{k}",
            )
            for k in range(readers)
        ]
        writer.start()
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        wall = time.perf_counter() - started
        stop.set()
        writer.join()
        walls.append(wall * 1000.0)
        checks = _validate(history, observations)
        checks["reads"] = len(observations)
        checks["converged"] = (
            db.epoch.active_pins == 0 and db.epoch.limbo_size == 0
        )
        commits = tally.get("commits", 0)
        last_checks = checks
    wall_ms = float(np.min(walls))
    total_reads = readers * READS_PER_READER
    return {
        "readers": readers,
        "reads": total_reads,
        "wall_ms": float(np.mean(walls)),
        "wall_ms_min": wall_ms,
        "throughput_rps": total_reads / (wall_ms / 1000.0) if wall_ms else 0.0,
        "writer_commits": commits,
        **last_checks,
    }


def run_concurrent_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the reader-scaling curve and return the comparison dict."""
    modes: Dict[str, dict] = {}
    with obs.span("bench.concurrent", runs=runs):
        for readers in READER_COUNTS:
            modes[f"r{readers}"] = _run_mode(readers, runs)
    report = {
        "label": "concurrent",
        "created_unix": time.time(),
        "config": {
            "domain": str(DOMAIN),
            "region": str(REGION),
            "tile_bytes": TILE_BYTES,
            "objects": list(OBJECTS),
            "reads_per_reader": READS_PER_READER,
            "reader_counts": list(READER_COUNTS),
            "payload_variants": PAYLOAD_VARIANTS,
            "realtime_scale": REALTIME_SCALE,
            "runs": runs,
            "compression": "zlib",
        },
        "modes": modes,
        "identity": _verdicts(modes),
        "performance": _performance(modes),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(modes: Dict[str, dict]) -> dict:
    """Deterministic invariant checks (gated on in CI)."""
    return {
        "reads_match_committed": all(
            m["torn_reads"] == 0 for m in modes.values()
        ),
        "snapshots_cross_object_consistent": all(
            m["inconsistent_snapshots"] == 0 for m in modes.values()
        ),
        "reclamation_converged": all(
            m["converged"] for m in modes.values()
        ),
        "read_quota_completed": all(
            m["reads"] == m["readers"] * READS_PER_READER
            for m in modes.values()
        ),
        "writer_ran_during_reads": all(
            m["writer_commits"] >= 1 for m in modes.values()
        ),
    }


def _performance(modes: Dict[str, dict]) -> dict:
    """Scaling curve (reported, never gated on in CI)."""
    t1 = modes["r1"]["throughput_rps"]
    out = {
        f"throughput_r{m['readers']}": m["throughput_rps"]
        for m in modes.values()
    }
    scaling = modes["r4"]["throughput_rps"] / t1 if t1 else 0.0
    out["read_scaling_4r"] = scaling
    out["read_scaling_2x"] = scaling >= 2.0
    return out


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_concurrent.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width mode comparison for the CLI."""
    headers = [
        "readers", "reads", "wall ms", "reads/s", "commits", "torn",
        "scaling",
    ]
    t1 = report["modes"]["r1"]["throughput_rps"]
    rows = []
    for entry in report["modes"].values():
        scaling = entry["throughput_rps"] / t1 if t1 else 0.0
        rows.append([
            str(entry["readers"]),
            str(entry["reads"]),
            f"{entry['wall_ms']:.1f}",
            f"{entry['throughput_rps']:.0f}",
            str(entry["writer_commits"]),
            str(entry["torn_reads"]),
            f"{scaling:.2f}x",
        ])
    return format_table(
        headers, rows,
        title="concurrent reads under one writer (snapshot isolation)",
    )
