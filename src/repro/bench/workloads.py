"""Auxiliary workload generators for ablation benches and tests.

Beyond the two paper workloads (:mod:`repro.bench.salescube`,
:mod:`repro.bench.animation`), the ablation benches need sparse cubes,
random query mixes, and frame-scan workloads.  Everything is seeded and
deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.geometry import MInterval


def sparse_cube(
    shape: Sequence[int],
    density: float = 0.05,
    seed: int = 7,
    dtype=np.uint32,
) -> np.ndarray:
    """A mostly-default cube: ``density`` fraction of cells are non-zero,
    clustered into a few dense blobs (OLAP-style sparsity)."""
    rng = np.random.default_rng(seed)
    data = np.zeros(shape, dtype=dtype)
    total = int(np.prod(shape))
    target = int(total * density)
    blobs = max(1, target // 2000)
    placed = 0
    for _ in range(blobs):
        corner = [rng.integers(0, max(1, s - 1)) for s in shape]
        extent = [int(rng.integers(2, max(3, s // 4))) for s in shape]
        slices = tuple(
            slice(c, min(c + e, s)) for c, e, s in zip(corner, extent, shape)
        )
        block_shape = tuple(sl.stop - sl.start for sl in slices)
        data[slices] = rng.integers(1, 100, size=block_shape, dtype=dtype)
        placed += int(np.prod(block_shape))
        if placed >= target:
            break
    return data


def random_range_queries(
    domain: MInterval,
    count: int,
    mean_fraction: float = 0.1,
    seed: int = 13,
) -> list[MInterval]:
    """Uniformly placed box queries, each axis spanning roughly
    ``mean_fraction`` of the domain extent."""
    rng = np.random.default_rng(seed)
    queries: list[MInterval] = []
    for _ in range(count):
        lo: list[int] = []
        hi: list[int] = []
        for axis in range(domain.dim):
            extent = domain.shape[axis]
            span = max(1, int(extent * mean_fraction * rng.uniform(0.5, 1.5)))
            span = min(span, extent)
            start = int(rng.integers(0, extent - span + 1))
            low = domain.lowest[axis] + start
            lo.append(low)
            hi.append(low + span - 1)
        queries.append(MInterval(lo, hi))
    return queries


def hotspot_queries(
    hotspot: MInterval,
    count: int,
    jitter: int = 2,
    seed: int = 17,
    domain: Optional[MInterval] = None,
) -> list[MInterval]:
    """Repeated accesses around one hotspot with small positional jitter —
    the access-log shape statistic tiling is built for."""
    rng = np.random.default_rng(seed)
    queries: list[MInterval] = []
    for _ in range(count):
        offset = [int(rng.integers(-jitter, jitter + 1)) for _ in range(hotspot.dim)]
        moved = hotspot.translate(offset)
        if domain is not None:
            clipped = moved.intersection(domain)
            if clipped is None:
                continue
            moved = clipped
        queries.append(moved)
    return queries


def frame_scan_queries(domain: MInterval, axis: int, step: int = 1) -> list[MInterval]:
    """Section queries sweeping ``axis`` — Figure 4's frame-by-frame access."""
    queries = []
    lo = domain.lowest[axis]
    hi = domain.highest[axis]
    for coordinate in range(lo, hi + 1, step):
        queries.append(domain.section(axis, coordinate))
    return queries
