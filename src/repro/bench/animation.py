"""The animation benchmark of Section 6.2 (Tables 5-6, Figure 8).

A 3-D RGB animation sequence — 121 frames of 160x120 pixels, 6.8 MB
(Table 5).  The areas of interest follow the main character across all
frames: area 1 is the head, area 2 the whole body (head included, so the
areas overlap).  Queries **a**/**b** read the areas (the access pattern);
**c** (first 61 frames) and **d** (whole array) are the "unexpected"
accesses the tuned tiling pays for.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType, mdd_type
from repro.tiling.aligned import RegularTiling
from repro.tiling.base import KB, TilingStrategy
from repro.tiling.interest import AreasOfInterestTiling

#: Table 5 — frames x image rows x image columns.
ANIMATION_DOMAIN = MInterval.parse("[0:120,0:159,0:119]")

#: Table 5 — the two overlapping areas of interest (head, whole body).
AREA_HEAD = MInterval.parse("[0:120,80:120,25:60]")
AREA_BODY = MInterval.parse("[0:120,70:159,25:105]")
AREAS_OF_INTEREST = (AREA_HEAD, AREA_BODY)

#: Table 5 — the query set.
QUERIES: Dict[str, MInterval] = {
    "a": AREA_HEAD,
    "b": AREA_BODY,
    "c": MInterval.parse("[0:60,*:*,*:*]"),
    "d": MInterval.parse("[*:*,*:*,*:*]"),
}

#: Queries forming the tuned-for access pattern vs the unexpected ones.
PATTERN_QUERIES = ("a", "b")
UNEXPECTED_QUERIES = ("c", "d")

SCHEME_SIZES = (32, 64, 128, 256)


def animation_mdd_type(domain: MInterval = ANIMATION_DOMAIN) -> MDDType:
    """3-byte RGB cells, per Table 5."""
    return mdd_type("Animation", "rgb", domain)


def build_schemes(
    domain: MInterval = ANIMATION_DOMAIN,
) -> Dict[str, TilingStrategy]:
    """Table 5's schemes: Reg/AI at 32/64/128/256 KB."""
    schemes: Dict[str, TilingStrategy] = {}
    for size in SCHEME_SIZES:
        schemes[f"Reg{size}K"] = RegularTiling(size * KB)
        schemes[f"AI{size}K"] = AreasOfInterestTiling(
            AREAS_OF_INTEREST, size * KB
        )
    return schemes


def generate_animation(
    domain: MInterval = ANIMATION_DOMAIN, seed: int = 20260706
) -> np.ndarray:
    """Deterministic synthetic animation with a character in the areas.

    A textured background plus a walking "body" ellipse and "head" disc
    whose positions oscillate inside the declared areas of interest, so
    the data actually matches the benchmark's access semantics.
    """
    rng = np.random.default_rng(seed)
    frames, height, width = domain.shape
    video = np.zeros((frames, height, width), dtype=[("r", "u1"), ("g", "u1"), ("b", "u1")])

    y_coords = np.arange(height)[:, None]
    x_coords = np.arange(width)[None, :]
    background = (
        32
        + 16 * np.sin(2 * np.pi * y_coords / 40.0)
        + 16 * np.cos(2 * np.pi * x_coords / 40.0)
    )
    noise = rng.integers(0, 8, size=(frames, height, width), dtype=np.uint8)

    for frame in range(frames):
        sway = 5.0 * np.sin(2 * np.pi * frame / 24.0)
        body_y, body_x = 115 + sway * 0.5, 65 + sway
        head_y, head_x = 100 + sway * 0.3, 42 + sway * 0.5
        body = (
            ((y_coords - body_y) / 42.0) ** 2 + ((x_coords - body_x) / 35.0) ** 2
        ) <= 1.0
        head = (
            ((y_coords - head_y) / 18.0) ** 2 + ((x_coords - head_x) / 15.0) ** 2
        ) <= 1.0
        red = background + noise[frame]
        green = background * 0.8 + noise[frame]
        blue = background * 0.6 + noise[frame]
        red = np.where(body, 180, red)
        green = np.where(body, 90, green)
        blue = np.where(body, 60, blue)
        red = np.where(head, 230, red)
        green = np.where(head, 190, green)
        blue = np.where(head, 160, blue)
        video[frame]["r"] = np.clip(red, 0, 255).astype(np.uint8)
        video[frame]["g"] = np.clip(green, 0, 255).astype(np.uint8)
        video[frame]["b"] = np.clip(blue, 0, 255).astype(np.uint8)
    return video
