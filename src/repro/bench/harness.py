"""Benchmark harness: build schemes, run query sets, compute speedups.

Reproduces the measurement protocol of Section 6: each tiling scheme gets
its own database; every query runs cold (disk counters reset, pool
cleared) and is repeated ``runs`` times with time components averaged —
the paper used five runs per query.  With ``warm=True`` only the first
run of each query is cold, so a buffer pool (``database_factory`` with
``buffer_bytes > 0``) shows its hit behaviour in the averaged counters.

Every benchmark can emit a machine-readable ``BENCH_<label>.json``
artifact — per-scheme load stats, per-query timing components, pool
activity, and a snapshot of the :mod:`repro.obs` metrics registry — by
passing ``artifact_dir`` (the CLI does) or setting the
``REPRO_BENCH_ARTIFACTS`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.query.timing import LoadStats, QueryTiming, speedup
from repro.storage.tilestore import Database, StoredMDD
from repro.tiling.base import TilingStrategy

DatabaseFactory = Callable[[], Database]

#: Environment variable naming a default artifact directory.
ARTIFACTS_ENV = "REPRO_BENCH_ARTIFACTS"


@dataclass
class SchemeRun:
    """One tiling scheme's cube and measurements."""

    name: str
    strategy: TilingStrategy
    database: Database
    mdd: StoredMDD
    load: LoadStats
    timings: Dict[str, QueryTiming] = field(default_factory=dict)

    def average(self, component: str, queries: Sequence[str]) -> float:
        """Mean of one time component over a query subset."""
        return float(
            np.mean([getattr(self.timings[q], component) for q in queries])
        )


@dataclass
class BenchmarkResults:
    """All scheme runs of one benchmark, keyed by scheme name."""

    runs: Dict[str, SchemeRun]
    queries: Dict[str, MInterval]
    label: str = "bench"
    artifact_path: Optional[str] = None

    def scheme(self, name: str) -> SchemeRun:
        return self.runs[name]

    def best_scheme(
        self,
        component: str = "t_totalcpu",
        subset: Optional[Sequence[str]] = None,
        names: Optional[Sequence[str]] = None,
    ) -> str:
        """Scheme with the lowest average component over the query set."""
        queries = list(subset) if subset is not None else list(self.queries)
        candidates = list(names) if names is not None else list(self.runs)
        return min(
            candidates, key=lambda n: self.runs[n].average(component, queries)
        )

    def speedups(
        self, tuned: str, baseline: str
    ) -> Dict[str, Dict[str, float]]:
        """Per-query baseline-over-tuned ratios (the paper's Tables 4/6)."""
        table: Dict[str, Dict[str, float]] = {}
        for query in self.queries:
            table[query] = speedup(
                self.runs[baseline].timings[query],
                self.runs[tuned].timings[query],
            )
        return table


def run_benchmark(
    schemes: Mapping[str, TilingStrategy],
    mdd_type: MDDType,
    data: Optional[np.ndarray],
    queries: Mapping[str, MInterval],
    origin: Optional[Sequence[int]] = None,
    runs: int = 3,
    database_factory: Optional[DatabaseFactory] = None,
    domain: Optional[MInterval] = None,
    warm: bool = False,
    label: str = "bench",
    artifact_dir: Optional[Union[str, Path]] = None,
) -> BenchmarkResults:
    """Load one cube per scheme and measure every query cold.

    ``data`` may be None for virtual (synthesized) payloads, in which case
    ``domain`` gives the object's extent.  Every query region is resolved
    by the object itself, so ``*`` bounds are legal.

    ``warm`` keeps the buffer pool and disk state across the repeat runs
    of each query (the first run stays cold), exposing cache behaviour in
    the averaged pool counters.  With ``artifact_dir`` (or the
    ``REPRO_BENCH_ARTIFACTS`` environment variable) set, the results are
    also written to ``<artifact_dir>/BENCH_<label>.json``.
    """
    with obs.span("bench.run", label=label, schemes=len(schemes)):
        results: Dict[str, SchemeRun] = {}
        for name, strategy in schemes.items():
            database = database_factory() if database_factory else Database()
            mdd = database.create_object("bench", mdd_type, name)
            if data is not None:
                load = mdd.load_array(data, strategy, origin=origin)
            else:
                if domain is None:
                    raise ValueError(
                        "virtual benchmarks need an explicit domain"
                    )
                load = mdd.load_virtual(domain, strategy)
            run = SchemeRun(name, strategy, database, mdd, load)
            for query_name, region in queries.items():
                run.timings[query_name] = _measure(
                    database, mdd, region, runs, warm=warm
                )
            results[name] = run
    benchmark = BenchmarkResults(
        runs=results, queries=dict(queries), label=label
    )
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        benchmark.artifact_path = str(
            write_artifact(benchmark, artifact_dir, runs=runs, warm=warm)
        )
    return benchmark


def _measure(
    database: Database,
    mdd: StoredMDD,
    region: MInterval,
    runs: int,
    warm: bool = False,
) -> QueryTiming:
    """Run a query ``runs`` times and average times *and* counters.

    Cold protocol: every run starts from reset disk counters and an empty
    pool.  Warm protocol: only the first run is cold, so later runs hit
    the pool and the averaged counters show the cache effect.
    """
    accumulated = QueryTiming()
    for index in range(max(1, runs)):
        if index == 0 or not warm:
            database.reset_clock()
        _data, timing = mdd.read(region)
        accumulated.add(timing)
    return accumulated.scaled(1.0 / max(1, runs))


def write_artifact(
    results: BenchmarkResults,
    directory: Union[str, Path],
    runs: int = 0,
    warm: bool = False,
) -> Path:
    """Write ``BENCH_<label>.json``: timings, pool stats, registry snapshot."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{results.label}.json"
    schemes = {}
    for name, run in results.runs.items():
        pool = run.database.pool
        schemes[name] = {
            "load": run.load.as_dict(),
            "tile_count": run.mdd.tile_count,
            "stored_bytes": run.mdd.stored_bytes(),
            "queries": {
                query: timing.as_dict()
                for query, timing in run.timings.items()
            },
            "pool": (
                {
                    "capacity_bytes": pool.capacity_bytes,
                    "hits": pool.hits,
                    "misses": pool.misses,
                    "evictions": pool.evictions,
                    "hit_rate": pool.hit_rate,
                }
                if pool is not None
                else None
            ),
        }
    artifact = {
        "label": results.label,
        "created_unix": time.time(),
        "runs": runs,
        "warm": warm,
        "queries": {q: str(r) for q, r in results.queries.items()},
        "schemes": schemes,
        "registry": obs.snapshot(),
    }
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    return path


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the fair average for ratios."""
    array = np.asarray(values, dtype=np.float64)
    if np.any(array <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(array))))
