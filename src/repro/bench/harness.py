"""Benchmark harness: build schemes, run query sets, compute speedups.

Reproduces the measurement protocol of Section 6: each tiling scheme gets
its own database; every query runs cold (disk counters reset, pool
cleared) and is repeated ``runs`` times with time components averaged —
the paper used five runs per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.query.timing import LoadStats, QueryTiming, speedup
from repro.storage.tilestore import Database, StoredMDD
from repro.tiling.base import TilingStrategy

DatabaseFactory = Callable[[], Database]


@dataclass
class SchemeRun:
    """One tiling scheme's cube and measurements."""

    name: str
    strategy: TilingStrategy
    database: Database
    mdd: StoredMDD
    load: LoadStats
    timings: Dict[str, QueryTiming] = field(default_factory=dict)

    def average(self, component: str, queries: Sequence[str]) -> float:
        """Mean of one time component over a query subset."""
        return float(
            np.mean([getattr(self.timings[q], component) for q in queries])
        )


@dataclass
class BenchmarkResults:
    """All scheme runs of one benchmark, keyed by scheme name."""

    runs: Dict[str, SchemeRun]
    queries: Dict[str, MInterval]

    def scheme(self, name: str) -> SchemeRun:
        return self.runs[name]

    def best_scheme(
        self,
        component: str = "t_totalcpu",
        subset: Optional[Sequence[str]] = None,
        names: Optional[Sequence[str]] = None,
    ) -> str:
        """Scheme with the lowest average component over the query set."""
        queries = list(subset) if subset is not None else list(self.queries)
        candidates = list(names) if names is not None else list(self.runs)
        return min(
            candidates, key=lambda n: self.runs[n].average(component, queries)
        )

    def speedups(
        self, tuned: str, baseline: str
    ) -> Dict[str, Dict[str, float]]:
        """Per-query baseline-over-tuned ratios (the paper's Tables 4/6)."""
        table: Dict[str, Dict[str, float]] = {}
        for query in self.queries:
            table[query] = speedup(
                self.runs[baseline].timings[query],
                self.runs[tuned].timings[query],
            )
        return table


def run_benchmark(
    schemes: Mapping[str, TilingStrategy],
    mdd_type: MDDType,
    data: Optional[np.ndarray],
    queries: Mapping[str, MInterval],
    origin: Optional[Sequence[int]] = None,
    runs: int = 3,
    database_factory: Optional[DatabaseFactory] = None,
    domain: Optional[MInterval] = None,
) -> BenchmarkResults:
    """Load one cube per scheme and measure every query cold.

    ``data`` may be None for virtual (synthesized) payloads, in which case
    ``domain`` gives the object's extent.  Every query region is resolved
    by the object itself, so ``*`` bounds are legal.
    """
    results: Dict[str, SchemeRun] = {}
    for name, strategy in schemes.items():
        database = database_factory() if database_factory else Database()
        mdd = database.create_object("bench", mdd_type, name)
        if data is not None:
            load = mdd.load_array(data, strategy, origin=origin)
        else:
            if domain is None:
                raise ValueError("virtual benchmarks need an explicit domain")
            load = mdd.load_virtual(domain, strategy)
        run = SchemeRun(name, strategy, database, mdd, load)
        for query_name, region in queries.items():
            run.timings[query_name] = _measure(database, mdd, region, runs)
        results[name] = run
    return BenchmarkResults(runs=results, queries=dict(queries))


def _measure(
    database: Database, mdd: StoredMDD, region: MInterval, runs: int
) -> QueryTiming:
    """Cold-run a query ``runs`` times and average the time components."""
    accumulated: Optional[QueryTiming] = None
    for _ in range(max(1, runs)):
        database.reset_clock()
        _data, timing = mdd.read(region)
        if accumulated is None:
            accumulated = timing
        else:
            accumulated.t_ix += timing.t_ix
            accumulated.t_o += timing.t_o
            accumulated.t_cpu += timing.t_cpu
    assert accumulated is not None
    factor = 1.0 / max(1, runs)
    averaged = accumulated.scaled(factor)
    return averaged


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the fair average for ratios."""
    array = np.asarray(values, dtype=np.float64)
    if np.any(array <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(array))))
