"""Benchmark substrate: paper workloads, harness and report formatting."""

from repro.bench.harness import (
    BenchmarkResults,
    SchemeRun,
    geometric_mean,
    run_benchmark,
)
from repro.bench.figures import figure_for_schemes, stacked_bars
from repro.bench.report import (
    format_table,
    speedup_rows,
    timing_components_rows,
)

__all__ = [
    "BenchmarkResults",
    "SchemeRun",
    "figure_for_schemes",
    "format_table",
    "geometric_mean",
    "run_benchmark",
    "speedup_rows",
    "stacked_bars",
    "timing_components_rows",
]
