"""Read-pipeline benchmark: serial vs parallel vs decoded-cache warm.

Unlike the paper-table benchmarks (which reproduce published numbers from
the *modelled* disk), this bench measures the implementation itself.  It
loads one compressed cube three times and reads the same query set under
three configurations:

* ``serial`` — the baseline single-threaded read path, cold caches;
* ``parallel`` — ``io_workers > 1`` so decompression overlaps across a
  query's tiles.  Results must stay **bit-for-bit identical** to serial
  and the modelled charges (``t_o``, index pages behind ``t_ix``) must
  match exactly, because only order-free decode work leaves the
  coordinator thread;
* ``decoded`` — a decoded-tile cache sized to hold the cube, measured on
  warm repeats.  Repeat reads must decode **zero** tiles (every tile is a
  decoded-cache hit, ``t_o == 0``) and run measurably faster than the
  cold serial path.

The verdicts — byte identity, modelled-charge equality, repeat-decode
elimination — are embedded in the ``BENCH_pipeline.json`` artifact so CI
can track them alongside the wall-clock numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.core.geometry import MInterval
from repro.core.mddtype import mdd_type
from repro.storage.tilestore import Database, StoredMDD
from repro.tiling.aligned import RegularTiling

#: Cube geometry: compressible int32 payload, many tiles per query.
SIDE = 512
TILE_BYTES = 64 * 1024

#: Query set: full scan, an interior box, a thin slab.
QUERIES: Dict[str, str] = {
    "full": f"[0:{SIDE - 1},0:{SIDE - 1}]",
    "box": f"[{SIDE // 4}:{3 * SIDE // 4},{SIDE // 4}:{3 * SIDE // 4}]",
    "slab": f"[0:{SIDE - 1},{SIDE // 2}:{SIDE // 2 + 15}]",
}


def _cube_data() -> np.ndarray:
    """Smooth, zlib-friendly payload so decompression is real work."""
    grid = np.indices((SIDE, SIDE)).sum(axis=0)
    return ((grid % 251) * 3).astype(np.int32)


def _load_cube(**database_kwargs) -> tuple[Database, StoredMDD]:
    database = Database(compression=True, **database_kwargs)
    cube_type = mdd_type("PipeCube", "long", f"[0:{SIDE - 1},0:{SIDE - 1}]")
    mdd = database.create_object("pipebench", cube_type, "cube")
    mdd.load_array(_cube_data(), RegularTiling(TILE_BYTES))
    return database, mdd


def _measure_mode(
    mdd: StoredMDD,
    database: Database,
    runs: int,
    warm: bool,
) -> Dict[str, dict]:
    """Per-query wall/modelled measurements averaged over ``runs``.

    Cold protocol resets the disk clock and every cache before each run;
    warm protocol resets once and lets the repeats hit the caches (the
    first, cold run is excluded from the averages).
    """
    decoded_counter = obs.counter("pipeline.tiles_decoded")
    results: Dict[str, dict] = {}
    for name, spec in QUERIES.items():
        region = MInterval.parse(spec)
        if warm:
            database.reset_clock()
            mdd.read(region)  # cold priming run, not measured
        wall: List[float] = []
        timings = []
        decoded = []
        for _ in range(max(1, runs)):
            if not warm:
                database.reset_clock()
            before = decoded_counter.value
            started = time.perf_counter()
            array, timing = mdd.read(region)
            wall.append((time.perf_counter() - started) * 1000.0)
            timings.append(timing)
            decoded.append(int(decoded_counter.value - before))
        results[name] = {
            "wall_ms": float(np.mean(wall)),
            "wall_ms_min": float(np.min(wall)),
            "tiles_decoded_per_run": decoded,
            "digest": _digest(array),
            "timing": timings[-1].as_dict(),
        }
    return results


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(array.tobytes(order="C")).hexdigest()


def run_pipeline_bench(
    runs: int = 3,
    io_workers: int = 4,
    decoded_mb: int = 16,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the three configurations and return the comparison dict."""
    with obs.span("bench.pipeline", runs=runs, io_workers=io_workers):
        serial_db, serial_mdd = _load_cube(io_workers=1)
        serial = _measure_mode(serial_mdd, serial_db, runs, warm=False)

        parallel_db, parallel_mdd = _load_cube(io_workers=io_workers)
        parallel = _measure_mode(parallel_mdd, parallel_db, runs, warm=False)
        parallel_db.close()

        decoded_db, decoded_mdd = _load_cube(
            io_workers=1, decoded_cache_bytes=decoded_mb * 1024 * 1024
        )
        decoded = _measure_mode(decoded_mdd, decoded_db, runs, warm=True)

    identity = _verdicts(serial, parallel, decoded)
    report = {
        "label": "pipeline",
        "created_unix": time.time(),
        "config": {
            "side": SIDE,
            "tile_bytes": TILE_BYTES,
            "runs": runs,
            "io_workers": io_workers,
            "decoded_cache_bytes": decoded_mb * 1024 * 1024,
        },
        "queries": dict(QUERIES),
        "modes": {
            "serial": serial,
            "parallel": parallel,
            "decoded": decoded,
        },
        "identity": identity,
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(serial: dict, parallel: dict, decoded: dict) -> dict:
    """The acceptance checks, embedded in the artifact."""
    byte_identical = all(
        serial[q]["digest"] == parallel[q]["digest"] for q in QUERIES
    )
    t_o_equal = all(
        serial[q]["timing"]["t_o"] == parallel[q]["timing"]["t_o"]
        for q in QUERIES
    )
    index_pages_equal = all(
        serial[q]["timing"]["index_nodes"]
        == parallel[q]["timing"]["index_nodes"]
        for q in QUERIES
    )
    warm_decodes = sum(
        count
        for q in QUERIES
        for count in decoded[q]["tiles_decoded_per_run"]
    )
    warm_t_o_zero = all(
        decoded[q]["timing"]["t_o"] == 0.0 for q in QUERIES
    )
    warm_faster = all(
        decoded[q]["wall_ms_min"] < serial[q]["wall_ms_min"] for q in QUERIES
    )
    decoded_identical = all(
        serial[q]["digest"] == decoded[q]["digest"] for q in QUERIES
    )
    return {
        "parallel_byte_identical": byte_identical,
        "parallel_t_o_equal": t_o_equal,
        "parallel_index_pages_equal": index_pages_equal,
        "decoded_byte_identical": decoded_identical,
        "warm_repeat_decodes": warm_decodes,
        "warm_t_o_zero": warm_t_o_zero,
        "warm_faster_than_serial_cold": warm_faster,
    }


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_pipeline.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width mode comparison for the CLI."""
    headers = [
        "query", "mode", "wall ms", "t_o", "t_ix", "decoded h/m", "decodes"
    ]
    rows = []
    for query in report["queries"]:
        for mode in ("serial", "parallel", "decoded"):
            entry = report["modes"][mode][query]
            timing = entry["timing"]
            rows.append([
                query if mode == "serial" else "",
                mode,
                f"{entry['wall_ms']:.2f}",
                f"{timing['t_o']:.2f}",
                f"{timing['t_ix']:.2f}",
                f"{timing['decoded_hits']}/{timing['decoded_misses']}",
                str(sum(entry["tiles_decoded_per_run"])),
            ])
    return format_table(headers, rows, title="read pipeline (means over runs)")
