"""The OLAP sales-cube benchmark of Section 6.1 (Tables 1-4, Figure 7).

A 3-D data cube of a distributor's sales:

* axis 0 — time in days, 730 (two years), categorised into 24 months;
* axis 1 — products, 60, categorised into 3 product classes;
* axis 2 — stores, 100, categorised into 8 country districts.

Cells are 4-byte ``ulong`` sale counts, 16.7 MB per cube (Table 1).  The
extended cubes add one year, 240 products and 200 shops — 375 MB — with
the category partitions repeated (Section 6.1, last paragraph).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType, mdd_type
from repro.tiling.base import KB, TilingStrategy
from repro.tiling.aligned import RegularTiling
from repro.tiling.directional import DirectionalTiling

#: Table 1 — the small cube's spatial domain.
SALES_DOMAIN = MInterval.parse("[1:730,1:60,1:100]")

#: Table 1 — product classes partition of axis 1.
PRODUCT_CLASS_BOUNDARIES = (1, 27, 42, 60)

#: Table 1 — country districts partition of axis 2.
DISTRICT_BOUNDARIES = (1, 27, 35, 41, 59, 73, 89, 97, 100)

_MONTH_LENGTHS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def month_boundaries(first_day: int = 1, years: int = 2) -> tuple[int, ...]:
    """Paper-style month partition of the day axis: ``[1, 31, ..., 730]``.

    The first value opens the axis; every further value is the last day
    of a month (31, 59, 90, ...) over ``years`` non-leap years — 25
    boundary values delimiting the small cube's 24 months.
    """
    boundaries = [first_day]
    day = first_day - 1
    for _year in range(years):
        for length in _MONTH_LENGTHS:
            day += length
            boundaries.append(day)
    return tuple(boundaries)


def sales_mdd_type(domain: MInterval = SALES_DOMAIN) -> MDDType:
    """The cube's MDD type: 4-byte unsigned sale counts."""
    return mdd_type("SalesCube", "ulong", domain)


def partitions_2p(domain: MInterval = SALES_DOMAIN) -> dict[int, tuple[int, ...]]:
    """2P of Table 2: partitions along months and country districts only."""
    years = (domain.shape[0]) // 365
    return {
        0: month_boundaries(domain.lowest[0], years),
        2: _scaled_boundaries(DISTRICT_BOUNDARIES, domain, axis=2),
    }


def partitions_3p(domain: MInterval = SALES_DOMAIN) -> dict[int, tuple[int, ...]]:
    """3P of Table 2: partitions along all three dimensions."""
    parts = partitions_2p(domain)
    parts[1] = _scaled_boundaries(PRODUCT_CLASS_BOUNDARIES, domain, axis=1)
    return parts


def _scaled_boundaries(
    base: Sequence[int], domain: MInterval, axis: int
) -> tuple[int, ...]:
    """Repeat a small-cube partition across a larger extent.

    The extended cubes keep the same category structure "with the
    partition described before repeated": each repetition shifts the base
    boundaries by the small cube's extent on that axis.
    """
    small_extent = {0: 730, 1: 60, 2: 100}[axis]
    extent = domain.shape[axis]
    repeats, remainder = divmod(extent, small_extent)
    if remainder:
        raise ValueError(
            f"axis {axis} extent {extent} is not a multiple of {small_extent}"
        )
    lower = domain.lowest[axis]
    boundaries: list[int] = [lower]
    for repeat in range(repeats):
        offset = lower - base[0] + repeat * small_extent
        for value in base[1:]:  # category end coordinates
            boundaries.append(value + offset)
    return tuple(boundaries)


#: Table 2 — the tiling schemes compared (name → factory arguments).
SCHEME_SIZES_REGULAR = (32, 64, 128, 256)
SCHEME_SIZES_2P = (32, 64, 128, 256)
SCHEME_SIZES_3P = (32, 64)


def build_schemes(
    domain: MInterval = SALES_DOMAIN,
) -> Dict[str, TilingStrategy]:
    """All Table 2 schemes, keyed by the paper's names (Reg32K, Dir64K3P...).

    Dir128K3P / Dir256K3P are omitted exactly as in the paper: with all
    three partitions every block is already below 64 KB, so bigger
    MaxTileSize values would repeat Dir64K3P.
    """
    schemes: Dict[str, TilingStrategy] = {}
    for size in SCHEME_SIZES_REGULAR:
        schemes[f"Reg{size}K"] = RegularTiling(size * KB)
    two_p = partitions_2p(domain)
    for size in SCHEME_SIZES_2P:
        schemes[f"Dir{size}K2P"] = DirectionalTiling(two_p, size * KB)
    three_p = partitions_3p(domain)
    for size in SCHEME_SIZES_3P:
        schemes[f"Dir{size}K3P"] = DirectionalTiling(three_p, size * KB)
    return schemes


#: Table 3 — the query set (letter → region template with ``*`` bounds).
QUERIES: Dict[str, MInterval] = {
    "a": MInterval.parse("[32:59,28:42,28:35]"),
    "b": MInterval.parse("[32:59,*:*,28:35]"),
    "c": MInterval.parse("[32:59,28:42,*:*]"),
    "d": MInterval.parse("[*:*,28:42,28:35]"),
    "e": MInterval.parse("[32:59,*:*,*:*]"),
    "f": MInterval.parse("[*:*,*:*,28:35]"),
    "g": MInterval.parse("[*:*,28:42,*:*]"),
    "h": MInterval.parse("[182:365,*:*,*:*]"),
    "i": MInterval.parse("[32:396,*:*,*:*]"),
    "j": MInterval.parse("[28:34,*:*,*:*]"),
}

#: Table 3 — the categories each query selects, for report rows.
QUERY_SELECTS: Dict[str, str] = {
    "a": "1,1,1",
    "b": "1,all,1",
    "c": "1,1,all",
    "d": "all,1,1",
    "e": "1,all,all",
    "f": "all,all,1",
    "g": "all,1,all",
    "h": "6,all,all",
    "i": "12,all,all",
    "j": "1 week,all,all",
}

#: Queries the paper expects 2P schemes to win (no product-class restriction).
QUERIES_2P_FAVOURED = ("b", "e", "f", "h", "i")


def generate_sales_data(
    domain: MInterval = SALES_DOMAIN, seed: int = 20260706
) -> np.ndarray:
    """Deterministic synthetic sales counts with weekly/seasonal structure.

    The distribution is irrelevant to the timing comparison (tiling costs
    depend on geometry, not values) but realistic structure keeps CPU
    composition work honest and makes aggregate examples meaningful.
    """
    rng = np.random.default_rng(seed)
    days, products, stores = domain.shape
    day_index = np.arange(days, dtype=np.float64)
    weekly = 1.0 + 0.4 * np.sin(2 * np.pi * day_index / 7.0)
    seasonal = 1.0 + 0.3 * np.sin(2 * np.pi * day_index / 365.0)
    day_factor = (weekly * seasonal)[:, None, None]
    product_pop = rng.gamma(2.0, 2.0, size=(1, products, 1))
    store_size = rng.gamma(3.0, 1.5, size=(1, 1, stores))
    lam = 2.0 * day_factor * product_pop * store_size
    return rng.poisson(lam).astype(np.uint32)


# ---------------------------------------------------------------------------
# Extended cubes (Section 6.1, last paragraph)
# ---------------------------------------------------------------------------

#: 1095 days x 300 products x 300 stores x 4 B = 375 MB.
EXTENDED_DOMAIN = MInterval.parse("[1:1095,1:300,1:300]")


def extended_partitions_2p() -> dict[int, tuple[int, ...]]:
    return partitions_2p(EXTENDED_DOMAIN)


def extended_partitions_3p() -> dict[int, tuple[int, ...]]:
    return partitions_3p(EXTENDED_DOMAIN)


def extended_schemes() -> Dict[str, TilingStrategy]:
    """Only the two schemes the paper re-ran at 375 MB."""
    return {
        "Reg32K": RegularTiling(32 * KB),
        "Dir64K3P": DirectionalTiling(extended_partitions_3p(), 64 * KB),
    }
