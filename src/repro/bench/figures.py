"""Text rendering of the paper's figures (stacked time-component bars).

Figures 7 and 8 are stacked bar charts of ``t_ix`` / ``t_o`` / ``t_cpu``
per query and scheme.  :func:`stacked_bars` renders the same data as
fixed-width text so a terminal diff against the paper's figure shape is
possible without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.query.timing import QueryTiming

#: Component glyphs, in stacking order (bottom of the paper's bars first).
COMPONENT_GLYPHS = (("t_ix", "#"), ("t_o", "="), ("t_cpu", "."))


def stacked_bars(
    timings: Mapping[str, QueryTiming],
    width: int = 60,
    title: str = "",
) -> str:
    """Render per-label stacked bars of the three time components.

    Bars share one scale (the maximum total); each component's segment is
    proportional to its share, with at least one glyph when non-zero.
    """
    if not timings:
        raise ValueError("nothing to draw")
    peak = max(t.t_totalcpu for t in timings.values())
    if peak <= 0:
        raise ValueError("all totals are zero")
    label_width = max(len(label) for label in timings)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, timing in timings.items():
        bar = ""
        for component, glyph in COMPONENT_GLYPHS:
            value = getattr(timing, component)
            cells = round(value / peak * width)
            if value > 0 and cells == 0:
                cells = 1
            bar += glyph * cells
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(width + 3)}| "
            f"{timing.t_totalcpu:8.1f} ms"
        )
    legend = "  ".join(f"{glyph} {name}" for name, glyph in COMPONENT_GLYPHS)
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def figure_for_schemes(
    per_scheme: Mapping[str, Mapping[str, QueryTiming]],
    queries: Sequence[str],
    title: str,
    width: int = 60,
) -> str:
    """Figure 7/8 layout: one bar per (query, scheme) pair, grouped by
    query — mirroring the paper's side-by-side bars."""
    rows: dict[str, QueryTiming] = {}
    for query in queries:
        for scheme, timings in per_scheme.items():
            rows[f"{query}/{scheme}"] = timings[query]
    return stacked_bars(rows, width=width, title=title)
