"""Sharding benchmark: scatter-gather vs the single store, plus failover.

Loads the Section 6.1 sales cube with a coarse grid (48 tiles) into one
single-store database and into ``ShardedDatabase`` deployments of 1, 2,
and 4 shards, then runs the same query sweep everywhere: full-cube and
boxed range reads, predicated (masked) reads, all five condensers
through aggregation pushdown, predicated pushdown at 1% selectivity,
and the paper's 2P GROUP BY roll-up through the planned query engine.

The acceptance verdicts are deterministic and live in ``identity``
(gated in CI):

* every read and aggregate must be **bitwise-identical** across the
  single store and every shard count — scatter-gather reassembly and
  distributed partial-aggregate combination may not change one byte;
* pushdown must engage on the sharded path exactly where it engages on
  the single store;
* a failover drill — replicate a 2-shard deployment by WAL shipping,
  crash the primary mid-ingest (torn WAL tail), promote the followers —
  must recover exactly the shipped committed prefix, fsck-clean on both
  sides, and byte-equal to the recovered primary;
* the modelled read scaling at 4 shards (single-store total cost over
  the slowest shard's scatter cost) must be **>= 2x**.

Wall times and modelled speedups live in ``performance`` (reported, not
gated).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.bench.salescube import (
    SALES_DOMAIN,
    generate_sales_data,
    partitions_2p,
    sales_mdd_type,
)
from repro.core.geometry import MInterval
from repro.core.mdd import Tile
from repro.index.zonemap import AGG_FUNCS, CellPredicate
from repro.query.engine import QueryEngine
from repro.shard import ShardedDatabase, ShardedFollower
from repro.storage.fsck import fsck_database
from repro.storage.tilestore import Database
from repro.tiling.base import grid_partition
from repro.tiling.directional import category_intervals

#: Coarse grid over the sales cube: 4 x 3 x 4 = 48 tiles, enough to
#: spread meaningfully over 4 shards while keeping the bench fast.
TILE_SHAPE = (183, 20, 25)

#: Pipeline width per store (each shard gets its own pool).
IO_WORKERS = 4

#: Shard counts compared against the single store.
SHARD_COUNTS = (1, 2, 4)

#: The boxed range read (roughly one quadrant, crossing tile borders).
BOX = "[100:500,10:50,20:80]"

#: Predicate selectivity for the masked read / predicated pushdown.
SELECTIVITY = 0.01

#: The scaling verdict threshold at 4 shards.
SCALING_TARGET = 2.0


def _tiles(data: np.ndarray) -> List[Tile]:
    origin = SALES_DOMAIN.lowest
    return [
        Tile(box, data[box.to_slices(origin)].copy())
        for box in grid_partition(SALES_DOMAIN, TILE_SHAPE)
    ]


def _load_single(data: np.ndarray) -> tuple:
    database = Database(io_workers=IO_WORKERS)
    mdd = database.create_object("bench", sales_mdd_type(), "sales")
    mdd.write_tiles(_tiles(data))
    database.reset_clock()
    return database, mdd


def _load_sharded(data: np.ndarray, n_shards: int) -> tuple:
    sdb = ShardedDatabase(n_shards, io_workers=IO_WORKERS)
    sdb.create_collection("bench")
    mdd = sdb.create_object("bench", sales_mdd_type(), "sales")
    mdd.write_tiles(_tiles(data))
    sdb.reset_clock()
    return sdb, mdd


def _rollup_spec() -> Dict[int, tuple]:
    low, high = SALES_DOMAIN.lowest, SALES_DOMAIN.highest
    parts = partitions_2p()
    return {
        axis: category_intervals(bounds, low[axis], high[axis])
        for axis, bounds in parts.items()
    }


def _digest(value) -> str:
    if isinstance(value, np.ndarray):
        payload = value.tobytes(order="C")
    else:
        payload = repr(value).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _configs(threshold: int) -> Dict[str, dict]:
    predicate = CellPredicate(">", threshold)
    configs: Dict[str, dict] = {
        "read_full": {"kind": "read", "region": SALES_DOMAIN},
        "read_box": {"kind": "read", "region": MInterval.parse(BOX)},
        "read_pred": {
            "kind": "read",
            "region": MInterval.parse(BOX),
            "predicate": predicate,
        },
    }
    for op in sorted(AGG_FUNCS):
        configs[f"agg_{op}"] = {"kind": "aggregate", "op": op}
    for op in ("count_cells", "add_cells"):
        configs[f"pred_{op}"] = {
            "kind": "aggregate",
            "op": op,
            "predicate": predicate,
        }
    configs["rollup_2p"] = {
        "kind": "group_by",
        "op": "add_cells",
        "spec": _rollup_spec(),
    }
    return configs


def _run_config(database, mdd, config: dict, runs: int) -> dict:
    """One query on one deployment, wall-averaged over runs."""
    walls: List[float] = []
    value = timing = None
    pushed = False
    scatter_max = None
    for _ in range(max(1, runs)):
        started = time.perf_counter()
        if config["kind"] == "read":
            value, timing = mdd.read(
                config["region"], predicate=config.get("predicate")
            )
            pushed = False
        elif config["kind"] == "aggregate":
            value, timing, pushed = mdd.aggregate_push(
                SALES_DOMAIN, config["op"],
                predicate=config.get("predicate"),
            )
        else:
            engine = QueryEngine(database)
            result = engine.group_by_query(
                mdd, SALES_DOMAIN, config["op"], config["spec"],
                pushdown=True, prune=True,
            )
            value, timing = result.value, result.timing
            pushed = bool(result.plan.pushed) if result.plan else False
        walls.append((time.perf_counter() - started) * 1000.0)
        # A GROUP BY is many scatters; a single max would be misleading.
        if config["kind"] != "group_by":
            scatter = getattr(mdd, "last_scatter", None)
            if scatter is not None:
                scatter_max = scatter.max_ms
    return {
        "digest": _digest(value),
        "value": (
            None if isinstance(value, np.ndarray) else value
        ),
        "pushed": pushed,
        "wall_ms": float(np.mean(walls)),
        "wall_ms_min": float(np.min(walls)),
        "modelled_ms": timing.t_o + timing.t_ix_pages,
        "scatter_max_ms": scatter_max,
        "tiles_read": timing.tiles_read,
        "tiles_pruned": timing.tiles_pruned,
        "tiles_synopsis_answered": timing.tiles_synopsis_answered,
        "tiles_partial_agg": timing.tiles_partial_agg,
        "timing": timing.as_dict(),
    }


def _failover_drill(data: np.ndarray) -> dict:
    """Replicate a 2-shard ingest, crash mid-batch, promote, compare.

    Deterministic: the "crash" truncates the primary WAL to the shipped
    watermark plus a torn fragment of the next batch, exactly the state
    a mid-append kill leaves behind.  The promoted follower and the
    recovered primary must both hold the shipped committed prefix.
    """
    from repro.storage.catalog import WAL_NAME

    tiles = _tiles(data)
    split = len(tiles) // 2
    workdir = Path(tempfile.mkdtemp(prefix="bench_shard_failover_"))
    try:
        primary = ShardedDatabase.create(
            workdir / "primary", 2, durability="wal"
        )
        mdd = primary.create_object("bench", sales_mdd_type(), "sales")
        followers = ShardedFollower(primary, workdir / "replica")
        mdd.write_tiles(tiles[:split])
        statuses = followers.ship()
        committed, _ = mdd.read(mdd.current_domain)
        committed_domain = mdd.current_domain

        # Ingest the doomed batch, then crash: torn tails past the
        # shipped watermark on every shard log.
        mdd.write_tiles(tiles[split:])
        primary.close()
        for follower in followers.followers:
            wal_path = follower.primary_dir / WAL_NAME
            raw = wal_path.read_bytes()
            keep = min(follower.applied_bytes + 7, len(raw))
            wal_path.write_bytes(raw[:keep])

        promoted = followers.promote()
        promoted_mdd = promoted.collection("bench")["sales"]
        promoted_data, _ = promoted_mdd.read(committed_domain)

        recovered = ShardedDatabase.open(workdir / "primary")
        recovered_mdd = recovered.collection("bench")["sales"]
        recovered_data, _ = recovered_mdd.read(committed_domain)

        fsck_ok = all(
            fsck_database(shard_dir).ok
            for sdb in (promoted, recovered)
            for shard_dir in (sdb.shard_dirs or [])
        )
        promoted.close()
        recovered.close()
        return {
            "shipped_txns": sum(s.applied_txns for s in statuses),
            "committed_tiles": split,
            "prefix_recovered": (
                promoted_data.tobytes() == committed.tobytes()
                and recovered_data.tobytes() == committed.tobytes()
            ),
            "promoted_equals_recovered_primary": (
                promoted_data.tobytes() == recovered_data.tobytes()
            ),
            "fsck_clean_both_sides": fsck_ok,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_shard_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the shard sweep + failover drill, return the comparison dict."""
    data = generate_sales_data()
    threshold = int(np.quantile(data, 1.0 - SELECTIVITY))
    configs = _configs(threshold)
    modes: Dict[str, Dict[str, dict]] = {}
    with obs.span("bench.shard", runs=runs):
        database, mdd = _load_single(data)
        modes["single"] = {
            name: _run_config(database, mdd, config, runs)
            for name, config in configs.items()
        }
        tile_count = len(mdd.tile_entries())
        database.close()
        spreads: Dict[str, List[int]] = {}
        for n_shards in SHARD_COUNTS:
            sdb, smdd = _load_sharded(data, n_shards)
            modes[f"shard{n_shards}"] = {
                name: _run_config(sdb, smdd, config, runs)
                for name, config in configs.items()
            }
            spreads[f"shard{n_shards}"] = list(smdd.tiles_per_shard())
            sdb.close()
        failover = _failover_drill(data)
    report = {
        "label": "shard",
        "created_unix": time.time(),
        "config": {
            "domain": str(SALES_DOMAIN),
            "tile_shape": list(TILE_SHAPE),
            "tile_count": tile_count,
            "io_workers": IO_WORKERS,
            "shard_counts": list(SHARD_COUNTS),
            "runs": runs,
            "selectivity": SELECTIVITY,
            "threshold": threshold,
            "tiles_per_shard": spreads,
        },
        "modes": modes,
        "failover": failover,
        "identity": _verdicts(modes, failover),
        "performance": _performance(modes),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _query_names(modes: Dict[str, Dict[str, dict]]) -> List[str]:
    return [
        name for name in modes["single"] if not name.startswith("_")
    ]


def _verdicts(modes: Dict[str, Dict[str, dict]], failover: dict) -> dict:
    """Deterministic acceptance checks (gated on in CI)."""
    names = _query_names(modes)
    sharded = [f"shard{n}" for n in SHARD_COUNTS]
    reads = [n for n in names if n.startswith("read_")]
    aggs = [n for n in names if n.startswith(("agg_", "pred_", "rollup_"))]
    return {
        "read_identical_all_shards": all(
            modes[mode][name]["digest"] == modes["single"][name]["digest"]
            for mode in sharded
            for name in reads
            if name != "read_pred"
        ),
        "predicated_read_identical": all(
            modes[mode]["read_pred"]["digest"]
            == modes["single"]["read_pred"]["digest"]
            for mode in sharded
        ),
        "aggregates_identical": all(
            modes[mode][name]["digest"] == modes["single"][name]["digest"]
            for mode in sharded
            for name in aggs
        ),
        "pushdown_engaged_as_single": all(
            modes[mode][name]["pushed"] == modes["single"][name]["pushed"]
            for mode in sharded
            for name in aggs
        ),
        "group_by_identical": all(
            modes[mode]["rollup_2p"]["digest"]
            == modes["single"]["rollup_2p"]["digest"]
            for mode in sharded
        ),
        "failover_recovers_committed_prefix": bool(
            failover["prefix_recovered"]
            and failover["promoted_equals_recovered_primary"]
        ),
        "failover_fsck_clean": bool(failover["fsck_clean_both_sides"]),
        "read_scaling_2x_at_4_shards": _scaling(modes) >= SCALING_TARGET,
    }


def _scaling(modes: Dict[str, Dict[str, dict]]) -> float:
    """Modelled full-cube read scaling: single total vs slowest shard."""
    single = modes["single"]["read_full"]["modelled_ms"]
    worst = modes["shard4"]["read_full"]["scatter_max_ms"]
    return single / worst if worst else float("inf")


def _performance(modes: Dict[str, Dict[str, dict]]) -> dict:
    """Modelled ratios (deterministic, reported but not CI-gated)."""
    out: dict = {"modelled_read_scaling_4_shards": _scaling(modes)}
    for n_shards in SHARD_COUNTS:
        mode = f"shard{n_shards}"
        for name in _query_names(modes):
            single = modes["single"][name]
            entry = modes[mode][name]
            scatter = entry.get("scatter_max_ms")
            if scatter:
                out[f"modelled_speedup_{mode}_{name}"] = (
                    single["modelled_ms"] / scatter
                )
            out[f"wall_ratio_{mode}_{name}"] = (
                single["wall_ms_min"] / entry["wall_ms_min"]
                if entry["wall_ms_min"]
                else float("inf")
            )
    return out


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_shard.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width deployment comparison for the CLI."""
    headers = ["query", "single ms"]
    for n_shards in SHARD_COUNTS:
        headers += [f"s{n_shards} max ms", f"s{n_shards} ident"]
    rows = []
    modes = report["modes"]
    for name in _query_names(modes):
        single = modes["single"][name]
        row = [name, f"{single['modelled_ms']:.2f}"]
        for n_shards in SHARD_COUNTS:
            entry = modes[f"shard{n_shards}"][name]
            scatter = entry.get("scatter_max_ms")
            row.append(f"{scatter:.2f}" if scatter else "-")
            row.append(
                "yes" if entry["digest"] == single["digest"] else "NO"
            )
        rows.append(row)
    lines = [format_table(
        headers, rows,
        title="sharded scatter-gather vs single store (modelled ms)",
    )]
    lines.append("")
    failover = report["failover"]
    lines.append(
        f"failover drill: {failover['shipped_txns']} shipped txns, "
        f"prefix recovered: {failover['prefix_recovered']}, "
        f"fsck clean: {failover['fsck_clean_both_sides']}"
    )
    scaling = report["performance"]["modelled_read_scaling_4_shards"]
    lines.append(
        f"modelled full-cube read scaling at 4 shards: {scaling:.2f}x "
        f"(target >= {SCALING_TARGET:g}x)"
    )
    return "\n".join(lines)
