"""Zone-map pruning benchmark: selectivity sweep vs full scan.

Loads the Section 6.1 sales cube with a value-friendly tiling — tiles
elongated along time so each covers few product x store combinations,
giving tiles genuinely distinct value ranges — then sweeps threshold
predicates from ~0.1% to 100% selectivity and reads the cube twice per
point:

* ``full``   — the masked read with pruning disabled (``prune=False``):
  every intersected tile is fetched and decoded, the pre-zone-map cost;
* ``pruned`` — the same read with the :class:`~repro.index.zonemap.
  TilePruner` consulted between ``index.search()`` and ``fetch_tiles``.

The acceptance verdicts are deterministic and live in ``identity``
(gated in CI): the pruned result must be **byte-identical** to the full
scan at every selectivity point, and all five condensers over the whole
cube must be answered from synopses with **zero tiles decoded** while
matching brute-force numpy reductions exactly.  Modelled-time speedups
(``t_o + t_ix_pages``, deterministic) live in ``performance`` and are
reported but never gated on; the headline figure is the speedup at <= 1%
selectivity, where pruning drops nearly every tile.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.bench.salescube import (
    SALES_DOMAIN,
    generate_sales_data,
    sales_mdd_type,
)
from repro.index.zonemap import AGG_FUNCS, CellPredicate
from repro.storage.tilestore import Database

#: Tile shape: full time axis, one product x two stores per tile ->
#: 3000 tiles of ~5.7 KB whose value ranges differ strongly (the gamma
#: popularity factors live on the product and store axes, so few
#: combinations per tile keep per-tile maxima far apart).
TILE_SHAPE = (730, 1, 2)

#: Target match fractions for the threshold sweep (1.0 = full scan).
SELECTIVITIES = (0.001, 0.01, 0.05, 0.25, 1.0)


def _load_cube(data: np.ndarray) -> tuple[Database, object]:
    from repro.tiling.base import grid_partition

    database = Database()
    mdd = database.create_object("bench", sales_mdd_type(), "sales")
    boxes = grid_partition(SALES_DOMAIN, TILE_SHAPE)
    from repro.core.mdd import Tile

    origin = SALES_DOMAIN.lowest
    tiles = [Tile(box, data[box.to_slices(origin)]) for box in boxes]
    mdd.write_tiles(tiles)
    database.reset_clock()
    return database, mdd


def _thresholds(data: np.ndarray) -> Dict[str, dict]:
    """One ``> t`` predicate per target selectivity (quantile-derived)."""
    points: Dict[str, dict] = {}
    for target in SELECTIVITIES:
        if target >= 1.0:
            threshold = int(data.min()) - 1  # everything matches
        else:
            threshold = int(np.quantile(data, 1.0 - target))
        points[f"{target:g}"] = {
            "target_selectivity": target,
            "threshold": threshold,
            "actual_selectivity": float((data > threshold).mean()),
        }
    return points


def _read_point(mdd, predicate: CellPredicate, prune: bool, runs: int) -> dict:
    walls: List[float] = []
    array = timing = None
    for _ in range(max(1, runs)):
        started = time.perf_counter()
        array, timing = mdd.read(
            SALES_DOMAIN, predicate=predicate, prune=prune
        )
        walls.append((time.perf_counter() - started) * 1000.0)
    return {
        "digest": hashlib.sha256(array.tobytes(order="C")).hexdigest(),
        "wall_ms": float(np.mean(walls)),
        "wall_ms_min": float(np.min(walls)),
        "modelled_ms": timing.t_o + timing.t_ix_pages,
        "tiles_read": timing.tiles_read,
        "tiles_pruned": timing.tiles_pruned,
        "bytes_read": timing.bytes_read,
        "timing": timing.as_dict(),
    }


def _condensers(mdd, data: np.ndarray, runs: int) -> Dict[str, dict]:
    """All five condensers over the whole cube, synopsis vs decode."""
    out: Dict[str, dict] = {}
    for op in sorted(AGG_FUNCS):
        walls: List[float] = []
        value = timing = None
        for _ in range(max(1, runs)):
            started = time.perf_counter()
            value, timing = mdd.aggregate(SALES_DOMAIN, op)
            walls.append((time.perf_counter() - started) * 1000.0)
        decoded_value, decoded_timing = mdd.aggregate(
            SALES_DOMAIN, op, prune=False
        )
        expected = AGG_FUNCS[op](data)
        out[op] = {
            "value": value,
            "decoded_value": decoded_value,
            "expected": expected,
            "exact": bool(value == expected == decoded_value),
            "tiles_read": timing.tiles_read,
            "tiles_synopsis_answered": timing.tiles_synopsis_answered,
            "wall_ms": float(np.mean(walls)),
            "modelled_ms": timing.t_o + timing.t_ix_pages,
            "decoded_modelled_ms": (
                decoded_timing.t_o + decoded_timing.t_ix_pages
            ),
        }
    return out


def run_prune_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the selectivity sweep and return the comparison dict."""
    data = generate_sales_data()
    with obs.span("bench.prune", runs=runs):
        database, mdd = _load_cube(data)
        points = _thresholds(data)
        modes: Dict[str, Dict[str, dict]] = {"full": {}, "pruned": {}}
        for point, meta in points.items():
            predicate = CellPredicate(">", meta["threshold"])
            modes["full"][point] = _read_point(
                mdd, predicate, prune=False, runs=runs
            )
            modes["pruned"][point] = _read_point(
                mdd, predicate, prune=True, runs=runs
            )
        condensers = _condensers(mdd, data, runs)
        tile_count = len(mdd.tile_entries())
        database.close()
    report = {
        "label": "prune",
        "created_unix": time.time(),
        "config": {
            "domain": str(SALES_DOMAIN),
            "tile_shape": list(TILE_SHAPE),
            "tile_count": tile_count,
            "runs": runs,
            "selectivities": list(SELECTIVITIES),
            "points": points,
        },
        "modes": modes,
        "condensers": condensers,
        "identity": _verdicts(modes, condensers, tile_count),
        "performance": _performance(modes, points),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(
    modes: Dict[str, Dict[str, dict]],
    condensers: Dict[str, dict],
    tile_count: int,
) -> dict:
    """Deterministic acceptance checks (gated on in CI)."""
    return {
        "byte_identical_all": all(
            modes["pruned"][p]["digest"] == modes["full"][p]["digest"]
            for p in modes["full"]
        ),
        "tiles_pruned_at_low_selectivity": (
            min(
                entry["tiles_pruned"]
                for point, entry in modes["pruned"].items()
                if float(point) <= 0.01
            )
            > 0
        ),
        "full_scan_never_prunes": all(
            entry["tiles_pruned"] == 0 for entry in modes["full"].values()
        ),
        "condensers_zero_decode": all(
            c["tiles_read"] == 0
            and c["tiles_synopsis_answered"] == tile_count
            for c in condensers.values()
        ),
        "condensers_exact": all(c["exact"] for c in condensers.values()),
    }


def _performance(
    modes: Dict[str, Dict[str, dict]], points: Dict[str, dict]
) -> dict:
    """Modelled-time ratios (deterministic, reported but not CI-gated)."""
    out: dict = {}
    low_speedups = []
    for point in points:
        full = modes["full"][point]["modelled_ms"]
        pruned = modes["pruned"][point]["modelled_ms"]
        speedup = full / pruned if pruned else float("inf")
        out[f"modelled_speedup_{point}"] = speedup
        if float(point) <= 0.01:
            low_speedups.append(speedup)
    out["modelled_speedup_5x_at_1pct"] = bool(
        low_speedups and min(low_speedups) >= 5.0
    )
    return out


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_prune.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width selectivity sweep for the CLI."""
    headers = [
        "selectivity", "threshold", "matched", "pruned", "full ms",
        "pruned ms", "speedup",
    ]
    rows = []
    tile_count = report["config"]["tile_count"]
    for point, meta in report["config"]["points"].items():
        full = report["modes"]["full"][point]
        pruned = report["modes"]["pruned"][point]
        speedup = (
            full["modelled_ms"] / pruned["modelled_ms"]
            if pruned["modelled_ms"]
            else float("inf")
        )
        rows.append([
            point,
            f"> {meta['threshold']}",
            f"{meta['actual_selectivity'] * 100:.2f}%",
            f"{pruned['tiles_pruned']}/{tile_count}",
            f"{full['modelled_ms']:.2f}",
            f"{pruned['modelled_ms']:.2f}",
            f"{speedup:.1f}x",
        ])
    lines = [format_table(
        headers, rows, title="zone-map pruning (sales cube, modelled ms)"
    )]
    lines.append("")
    lines.append("condensers over the whole cube (synopsis short-circuit):")
    for op, entry in report["condensers"].items():
        lines.append(
            f"  {op}: value={entry['value']} tiles_read={entry['tiles_read']}"
            f" synopsis_answered={entry['tiles_synopsis_answered']}"
            f" exact={entry['exact']}"
        )
    return "\n".join(lines)
