"""Service-layer benchmark: parallel HTTP clients against the tile server.

The network sibling of :mod:`repro.bench.concurrent` (DESIGN §14).  A
fresh database is served over HTTP and 1, 2 and 4 closed-loop clients
each perform a fixed quota of range reads through
:class:`repro.client.Client` — first pass cold, later passes
revalidating through the ETag cache — so the curve measures the whole
wire path: negotiation, tile framing, parallel fetch, reassembly.

Two result sections, the same CI contract as the other benches:

* ``identity`` — deterministic verdicts, **gated** by
  ``benchmarks/check_regression.py``: every response reassembles
  byte-identical to a direct :meth:`Database.read` (checked for every
  read via digests), repeat reads at an unchanged epoch answer **304**
  exactly (not one revalidation lost), a write bumps the ETag and the
  next read returns fresh bytes, no request errors, and every client
  finishes its quota;
* ``performance`` — requests/s and p50/p99 per-read latency,
  **reported but never gated** (CI boxes vary wildly).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.bench.harness import ARTIFACTS_ENV
from repro.bench.report import format_table
from repro.client import Client
from repro.core.cells import base_type
from repro.core.geometry import MInterval
from repro.core.mddtype import MDDType
from repro.serve import TileServer
from repro.storage.tilestore import Database
from repro.tiling.aligned import RegularTiling

DOMAIN = MInterval.parse("[0:255,0:255]")
TILE_BYTES = 16384
CLIENT_COUNTS = (1, 2, 4)
READS_PER_CLIENT = 24
#: the read mix: tile-aligned, straddling, full-object, and corner
#: boxes — every cache-refresh pass walks the same cycle, so reads
#: beyond the first ``len(BOXES)`` per client must all revalidate 304
BOXES = (
    "[0:127,0:127]",
    "[64:191,32:159]",
    "[0:255,0:255]",
    "[200:255,200:255]",
    "[30:40,0:255]",
    "[128:255,0:127]",
)
#: workers per client connection pool (the parallel fan-out width)
CLIENT_WORKERS = 4


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()[:16]


def _build_database() -> Database:
    """Fresh in-memory database: one four-by-four-tile object, zlib."""
    db = Database(compression=True)
    mdd_type = MDDType("cube", base_type("char"), DOMAIN)
    obj = db.create_object("bench", mdd_type, "a")
    rng = np.random.default_rng(1999)
    payload = rng.integers(0, 16, size=DOMAIN.shape).astype(np.uint8)
    obj.load_array(payload, RegularTiling(TILE_BYTES))
    return db


def _expected_digests(db: Database) -> Dict[str, str]:
    """Direct-read digests per box — the byte-identity ground truth."""
    obj = db.collection("bench")["a"]
    out = {}
    for box in BOXES:
        array, _ = obj.read(MInterval.parse(box))
        out[box] = _digest(array)
    return out


def _client_loop(
    url: str,
    expected: Dict[str, str],
    latencies: List[float],
    tally: dict,
    latch: threading.Lock,
) -> None:
    """One closed-loop client: its read quota over the box cycle.

    Alternates the parallel (tile-plan fan-out) and serial (one raw
    request) strategies so both wire paths are exercised and both share
    the ETag cache.
    """
    mismatches = 0
    errors = 0
    completed = 0
    own_latencies = []
    with Client(url, workers=CLIENT_WORKERS) as client:
        for i in range(READS_PER_CLIENT):
            box = BOXES[i % len(BOXES)]
            started = time.perf_counter()
            try:
                array = client.read(
                    "bench", "a", box, parallel=(i % 2 == 0)
                )
            except Exception:
                errors += 1
                continue
            own_latencies.append((time.perf_counter() - started) * 1000.0)
            completed += 1
            if _digest(array) != expected[box]:
                mismatches += 1
        stats = client.stats
        with latch:
            latencies.extend(own_latencies)
            tally["mismatches"] = tally.get("mismatches", 0) + mismatches
            tally["errors"] = tally.get("errors", 0) + errors
            tally["completed"] = tally.get("completed", 0) + completed
            tally["not_modified"] = (
                tally.get("not_modified", 0) + stats.not_modified
            )
            tally["requests"] = tally.get("requests", 0) + stats.requests


def _check_invalidation(db: Database, url: str) -> bool:
    """A write must bump the ETag: the next read is fresh, not 304."""
    with Client(url, workers=2) as client:
        box = "[0:31,0:31]"
        before = client.read("bench", "a", box)
        revalidations = client.stats.not_modified
        again = client.read("bench", "a", box)
        if client.stats.not_modified != revalidations + 1:
            return False  # the repeat read should have been a 304
        patch = (before[:32, :32] + 1).astype(before.dtype)
        client.write("bench", "a", box, patch)
        after = client.read("bench", "a", box)
        if client.stats.not_modified != revalidations + 1:
            return False  # the post-write read must NOT be a 304
        expected, _ = db.collection("bench")["a"].read(MInterval.parse(box))
        return (
            after.tobytes() == expected.tobytes()
            and again.tobytes() == before.tobytes()
        )


def _run_mode(clients: int, runs: int) -> dict:
    """One scaling point: ``clients`` concurrent closed-loop clients."""
    walls = []
    all_latencies: List[float] = []
    last_tally: dict = {}
    invalidated = True
    for _ in range(max(1, runs)):
        db = _build_database()
        expected = _expected_digests(db)
        with TileServer(db, port=0) as server:
            latencies: List[float] = []
            tally: dict = {}
            latch = threading.Lock()
            pool = [
                threading.Thread(
                    target=_client_loop,
                    args=(server.url, expected, latencies, tally, latch),
                    name=f"bench-client-{k}",
                )
                for k in range(clients)
            ]
            started = time.perf_counter()
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            wall = time.perf_counter() - started
            invalidated = _check_invalidation(db, server.url) and invalidated
        walls.append(wall * 1000.0)
        all_latencies = latencies
        last_tally = tally
    wall_ms = float(np.min(walls))
    total_reads = clients * READS_PER_CLIENT
    # Cold reads per client: the first pass over the cycle.  Everything
    # after it revalidates at an unchanged epoch, so the 304 count is
    # exact, not a lower bound.
    expected_304 = clients * (READS_PER_CLIENT - len(BOXES))
    return {
        "clients": clients,
        "requests": total_reads,
        "wall_ms": float(np.mean(walls)),
        "wall_ms_min": wall_ms,
        "throughput_rps": total_reads / (wall_ms / 1000.0) if wall_ms else 0.0,
        "p50_ms": float(np.percentile(all_latencies, 50))
        if all_latencies
        else 0.0,
        "p99_ms": float(np.percentile(all_latencies, 99))
        if all_latencies
        else 0.0,
        "mismatches": last_tally.get("mismatches", 0),
        "errors": last_tally.get("errors", 0),
        "completed": last_tally.get("completed", 0),
        "not_modified": last_tally.get("not_modified", 0),
        "expected_304": expected_304,
        "http_requests": last_tally.get("requests", 0),
        "write_invalidated": invalidated,
    }


def run_serve_bench(
    runs: int = 3,
    artifact_dir: Optional[Union[str, Path]] = None,
) -> dict:
    """Run the client-scaling curve and return the comparison dict."""
    modes: Dict[str, dict] = {}
    with obs.span("bench.serve", runs=runs):
        for clients in CLIENT_COUNTS:
            modes[f"c{clients}"] = _run_mode(clients, runs)
    report = {
        "label": "serve",
        "created_unix": time.time(),
        "config": {
            "domain": str(DOMAIN),
            "tile_bytes": TILE_BYTES,
            "boxes": list(BOXES),
            "reads_per_client": READS_PER_CLIENT,
            "client_counts": list(CLIENT_COUNTS),
            "client_workers": CLIENT_WORKERS,
            "runs": runs,
            "compression": "zlib",
        },
        "modes": modes,
        "identity": _verdicts(modes),
        "performance": _performance(modes),
        "registry": obs.snapshot(),
    }
    if artifact_dir is None:
        artifact_dir = os.environ.get(ARTIFACTS_ENV) or None
    if artifact_dir is not None:
        report["artifact_path"] = str(_write_artifact(report, artifact_dir))
    return report


def _verdicts(modes: Dict[str, dict]) -> dict:
    """Deterministic invariant checks (gated on in CI)."""
    return {
        "byte_identical": all(
            m["mismatches"] == 0 for m in modes.values()
        ),
        "responses_ok": all(m["errors"] == 0 for m in modes.values()),
        "etag_304_correct": all(
            m["not_modified"] == m["expected_304"] for m in modes.values()
        ),
        "etag_invalidation_correct": all(
            m["write_invalidated"] for m in modes.values()
        ),
        "read_quota_completed": all(
            m["completed"] == m["requests"] for m in modes.values()
        ),
    }


def _performance(modes: Dict[str, dict]) -> dict:
    """Throughput/latency curve (reported, never gated on in CI)."""
    out = {}
    for m in modes.values():
        out[f"throughput_c{m['clients']}"] = m["throughput_rps"]
        out[f"p50_ms_c{m['clients']}"] = m["p50_ms"]
        out[f"p99_ms_c{m['clients']}"] = m["p99_ms"]
    t1 = modes["c1"]["throughput_rps"]
    out["throughput_scaling_4c"] = (
        modes["c4"]["throughput_rps"] / t1 if t1 else 0.0
    )
    return out


def _write_artifact(report: dict, directory: Union[str, Path]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_serve.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def comparison_table(report: dict) -> str:
    """Fixed-width mode comparison for the CLI."""
    headers = [
        "clients", "reads", "wall ms", "req/s", "p50 ms", "p99 ms",
        "304s", "mism",
    ]
    rows = []
    for entry in report["modes"].values():
        rows.append([
            str(entry["clients"]),
            str(entry["requests"]),
            f"{entry['wall_ms']:.1f}",
            f"{entry['throughput_rps']:.0f}",
            f"{entry['p50_ms']:.2f}",
            f"{entry['p99_ms']:.2f}",
            str(entry["not_modified"]),
            str(entry["mismatches"]),
        ])
    return format_table(
        headers, rows,
        title="HTTP clients against the tile server (closed loop)",
    )
