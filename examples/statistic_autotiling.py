#!/usr/bin/env python3
"""Statistic tiling: let the access log choose the storage layout.

A session of queries runs against a default-tiled image; the query engine
records every access.  The tiling advisor then clusters the log
(DistanceThreshold / FrequencyThreshold), derives areas of interest, and
proposes a new tiling.  Re-tiled, the hot queries read exactly the bytes
they need.

Run:  python examples/statistic_autotiling.py
"""

import numpy as np

from repro import (
    AccessLog,
    AlignedTiling,
    Database,
    MInterval,
    QueryEngine,
    Tile,
    advise,
    mdd_type,
)
from repro.bench.workloads import hotspot_queries


def main() -> None:
    domain = MInterval.parse("[0:511,0:511]")
    image_type = mdd_type("Satellite", "ushort", str(domain))
    rng = np.random.default_rng(42)
    image = rng.integers(0, 4096, size=(512, 512), dtype=np.uint16)

    # --- Session 1: default tiling, accesses logged -----------------------
    database = Database()
    scene = database.create_object("scenes", image_type, "scene-042")
    scene.load_array(image, AlignedTiling(None, 16 * 1024))
    log = AccessLog()
    engine = QueryEngine(database, access_log=log)

    harbour = MInterval.parse("[80:159,300:419]")
    airport = MInterval.parse("[400:459,60:139]")
    workload = (
        hotspot_queries(harbour, 8, jitter=4, seed=1, domain=domain)
        + hotspot_queries(airport, 6, jitter=4, seed=2, domain=domain)
    )
    wasted = 0
    for region in workload:
        result = engine.range_query(scene, region)
        wasted += result.timing.cells_fetched - result.timing.cells_result
    print(f"Session 1 (default tiling): {log.count('scene-042')} accesses "
          f"logged, {wasted * 2 / 1024:.0f} KB of foreign bytes fetched")

    # --- Advice from the log ----------------------------------------------
    advice = advise(
        log.accesses("scene-042"),
        frequency_threshold=3,
        distance_threshold=10,
        max_tile_size=16 * 1024,
    )
    print(f"Advisor says: {advice.reason}")
    spec = advice.strategy.tile(domain, image_type.cell_size)
    print(f"Proposed tiling: {spec.tile_count} tiles "
          f"(avg {spec.average_tile_bytes() / 1024:.1f} KB)")

    # --- Session 2: re-tiled object ---------------------------------------
    database2 = Database()
    retiled = database2.create_object("scenes", image_type, "scene-042")
    for tile_domain in spec.tiles:
        retiled.insert_tile(
            Tile(tile_domain, image[tile_domain.to_slices((0, 0))])
        )
    engine2 = QueryEngine(database2)
    wasted2 = 0
    for region in workload:
        result = engine2.range_query(retiled, region)
        wasted2 += result.timing.cells_fetched - result.timing.cells_result
    print(f"Session 2 (statistic tiling): {wasted2 * 2 / 1024:.0f} KB of "
          f"foreign bytes fetched on the same workload")


if __name__ == "__main__":
    main()
