#!/usr/bin/env python3
"""Sparse OLAP cubes: partial cover, selective compression, retiling.

Section 8 of the paper names two features for sparse data — *selective
compression of blocks* and *partial cover of data cubes*.  This script
loads a sparse sales cube three ways and compares storage and scan cost,
then retiles the best variant after a simulated access pattern emerges.

Run:  python examples/sparse_olap.py
"""

import numpy as np

from repro import Database, MInterval, RegularTiling, StatisticTiling, mdd_type
from repro.bench.workloads import sparse_cube


def build(db, name, data, **load_kwargs):
    cube_type = mdd_type("SparseSales", "ulong", "[0:99,0:99,0:49]")
    obj = db.create_object("cubes", cube_type, name)
    obj.load_array(data, RegularTiling(32 * 1024), **load_kwargs)
    return obj


def main() -> None:
    data = sparse_cube((100, 100, 50), density=0.04, seed=11)
    whole = MInterval.parse("[*:*,*:*,*:*]")
    print(f"Cube: {data.shape}, {np.count_nonzero(data) / data.size:.1%} "
          f"non-default cells, {data.nbytes / 2**20:.1f} MB dense\n")

    variants = [
        ("dense, raw", Database(), {}),
        ("dense, compressed", Database(compression=True, codecs=("rle", "zlib")), {}),
        ("partial cover", Database(compression=True, codecs=("rle", "zlib")),
         {"skip_default_tiles": True}),
    ]
    print(f"{'Variant':22s} {'tiles':>5s} {'stored MB':>9s} {'scan t_o (ms)':>13s}")
    objects = {}
    for name, db, kwargs in variants:
        obj = build(db, name, data, **kwargs)
        db.reset_clock()
        out, timing = obj.read(whole)
        assert (out == data).all()
        objects[name] = (db, obj)
        print(f"{name:22s} {obj.tile_count:5d} "
              f"{obj.stored_bytes() / 2**20:9.2f} {timing.t_o:13.0f}")

    # An access pattern emerges: analysts keep hitting one dense region.
    db, obj = objects["partial cover"]
    hotspot = MInterval.parse("[20:45,20:45,0:49]")
    accesses = [hotspot] * 5
    print(f"\nRetiling for the hotspot {hotspot} from 5 logged accesses...")
    db.reset_clock()
    before = obj.read(hotspot)[1]
    obj.retile(
        StatisticTiling(accesses, frequency_threshold=3, distance_threshold=2,
                        max_tile_size=64 * 1024),
        skip_default_tiles=True,  # sparsity preserved through the retile
    )
    db.reset_clock()
    after = obj.read(hotspot)[1]
    print(f"hotspot: {before.tiles_read} tiles / {before.t_totalaccess:.0f} ms"
          f" -> {after.tiles_read} tiles / {after.t_totalaccess:.0f} ms")


if __name__ == "__main__":
    main()
