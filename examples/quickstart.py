#!/usr/bin/env python3
"""Quickstart: store a multidimensional array with tunable tiling.

Builds a small 3-D cube, stores it twice — regular tiling vs directional
tiling aligned with the cube's category structure — and compares what one
category-aligned range query costs under each scheme.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Database,
    DirectionalTiling,
    MInterval,
    RegularTiling,
    mdd_type,
)


def main() -> None:
    # A 3-D sales cube: 365 days x 40 products x 50 stores, 4-byte cells.
    cube_type = mdd_type("SalesCube", "ulong", "[1:365,1:40,1:50]")
    rng = np.random.default_rng(7)
    data = rng.integers(0, 100, size=(365, 40, 50), dtype=np.uint32)

    database = Database()

    # Scheme 1: regular tiling (the classic chunking baseline).
    regular = database.create_object("cubes", cube_type, "sales_regular")
    regular.load_array(data, RegularTiling(max_tile_size=32 * 1024),
                       origin=(1, 1, 1))

    # Scheme 2: directional tiling — cut along the month boundaries and
    # two product groups, so category queries align with tiles.
    months = tuple([1] + [30 * m for m in range(1, 12)] + [365])
    tuned = database.create_object("cubes", cube_type, "sales_directional")
    tuned.load_array(
        data,
        DirectionalTiling({0: months, 1: (1, 20, 40)}, max_tile_size=32 * 1024),
        origin=(1, 1, 1),
    )

    # One query: "first month, product group 2, all stores".
    query = MInterval.parse("[1:30,21:40,*:*]")
    for obj in (regular, tuned):
        database.reset_clock()
        result, timing = obj.read(query)
        assert (result == data[0:30, 20:40, :]).all()
        print(
            f"{obj.name:18s} tiles={timing.tiles_read:3d} "
            f"fetched={timing.bytes_read / 1024:7.1f}K "
            f"amplification={timing.read_amplification:4.2f} "
            f"t_total={timing.t_totalcpu:7.1f}ms"
        )

    print("\nDirectional tiling reads exactly the queried bytes; regular")
    print("tiling drags in border-tile data it then has to clip away.")


if __name__ == "__main__":
    main()
