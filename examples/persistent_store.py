#!/usr/bin/env python3
"""File-backed storage: a database that survives process restarts.

Tiles live in a real page file at exactly the page offsets the disk model
charges for; a JSON catalog sidecar records BLOB placement.  The script
simulates two sessions — a loader writing a compressed cube, and a reader
reopening the same files later.

Run:  python examples/persistent_store.py [directory]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Database, FileBlobStore, MInterval, RegularTiling, mdd_type

CUBE_TYPE = mdd_type("Measurements", "float", "[0:99,0:99,0:9]")


def load_session(path: Path) -> list[tuple[str, int, str]]:
    """Session 1: create the store, tile and persist a cube."""
    rng = np.random.default_rng(0)
    cube = rng.normal(size=(100, 100, 10)).astype(np.float32)
    cube[cube < 1.0] = 0.0  # sparse: mostly default values

    store = FileBlobStore(path / "cube.pages")
    database = Database(store=store, compression=True, codecs=("zlib",))
    obj = database.create_object("cubes", CUBE_TYPE, "m1")
    stats = obj.load_array(cube, RegularTiling(32 * 1024))
    manifest = [
        (str(entry.domain), entry.blob_id, entry.codec)
        for entry in obj.tile_entries()
    ]
    print(f"Session 1: stored {stats.tile_count} tiles, "
          f"{obj.stored_bytes() / 1024:.0f} KB on disk "
          f"({obj.logical_bytes() / 1024:.0f} KB logical)")
    store.close()  # syncs the catalog
    (path / "manifest.txt").write_text(
        "\n".join(f"{d}\t{b}\t{c}" for d, b, c in manifest)
    )
    return manifest


def read_session(path: Path) -> None:
    """Session 2: reopen the page file and query without reloading."""
    store = FileBlobStore.open(path / "cube.pages")
    database = Database(store=store)
    obj = database.create_object("cubes", CUBE_TYPE, "m1")
    for line in (path / "manifest.txt").read_text().splitlines():
        domain_text, blob_id, codec = line.split("\t")
        # attach_tile re-registers the existing BLOB: no data is copied.
        obj.attach_tile(MInterval.parse(domain_text), int(blob_id), codec)
    data, timing = obj.read(MInterval.parse("[40:59,40:59,*:*]"))
    print(f"Session 2: reopened store with {len(store)} blobs; query "
          f"returned {data.shape} array in {timing.t_totalcpu:.1f} ms "
          f"(simulated), nonzero cells: {np.count_nonzero(data)}")
    store.close()


def main() -> None:
    if len(sys.argv) > 1:
        base = Path(sys.argv[1])
        base.mkdir(parents=True, exist_ok=True)
        load_session(base)
        read_session(base)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            base = Path(tmp)
            load_session(base)
            read_session(base)


if __name__ == "__main__":
    main()
