#!/usr/bin/env python3
"""Tuning MaxTileSize for total access time (paper Section 8 future work).

The paper closes with: "Current work focus on extending the current
tiling techniques to optimize for total access time, i.e., including
index time."  This script runs that optimisation: a workload of small
dashboard queries plus occasional large scans is scored against candidate
MaxTileSize values with the static cost model, the winner is validated by
actually executing the workload, and the t_o-only choice is shown for
contrast.

Run:  python examples/tile_size_tuning.py
"""

import numpy as np

from repro import AlignedTiling, Database, MInterval, mdd_type
from repro.stats import choose_max_tile_size

KB = 1024


def main() -> None:
    domain = MInterval.parse("[0:511,0:511]")
    image_type = mdd_type("Basemap", "ushort", str(domain))
    rng = np.random.default_rng(3)
    image = rng.integers(0, 4096, size=(512, 512), dtype=np.uint16)

    # Mostly small tile-server style requests, occasionally a full export.
    workload = (
        [MInterval.parse("[64:95,128:159]")] * 6
        + [MInterval.parse("[300:363,40:103]")] * 3
        + [MInterval.parse("[*:*,*:*]")]
    )
    candidates = [1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB]

    result = choose_max_tile_size(
        lambda size: AlignedTiling(None, size),
        domain,
        image_type.cell_size,
        workload,
        candidates,
    )
    print("Static sweep (estimated total access time per query):")
    for size in candidates:
        marker = "  <- best" if size == result.best_size else ""
        print(f"  {size // KB:4d}K  {result.costs[size]:8.1f} ms{marker}")
    print(f"t_o-only optimisation would pick "
          f"{result.t_o_only_best // KB}K; including index time picks "
          f"{result.best_size // KB}K\n")

    print("Validation by execution:")
    for size in candidates:
        db = Database()
        obj = db.create_object("maps", image_type, f"tiles{size}")
        obj.load_array(image, AlignedTiling(None, size))
        total = 0.0
        for query in workload:
            db.reset_clock()
            total += obj.read(query)[1].t_totalaccess
        marker = "  <- tuner's pick" if size == result.best_size else ""
        print(f"  {size // KB:4d}K  {total / len(workload):8.1f} ms/query "
              f"({obj.tile_count} tiles){marker}")


if __name__ == "__main__":
    main()
