#!/usr/bin/env python3
"""MOLAP scenario: subaggregation over a category-tiled data cube.

Recreates the paper's Figure 3 story.  A 3-D sales cube (time x product x
store) carries category hierarchies: months, product classes, country
districts.  Tiling the cube along those hierarchies makes every
subaggregation ("units of product class P sold in district D during month
M") read exactly one tile.

The script loads the paper's own benchmark cube, runs RasQL
subaggregations against the directional and the regular scheme, and
prints a per-query cost comparison.

Run:  python examples/olap_sales_cube.py
"""

from repro import Database, DirectionalTiling, QueryEngine, RegularTiling, execute
from repro.bench import salescube


def main() -> None:
    print("Generating the Table 1 sales cube (730 x 60 x 100, 16.7 MB)...")
    data = salescube.generate_sales_data()
    cube_type = salescube.sales_mdd_type()

    database = Database()
    regular = database.create_object("reg_cubes", cube_type, "sales")
    regular.load_array(data, RegularTiling(32 * 1024), origin=(1, 1, 1))
    tuned = database.create_object("dir_cubes", cube_type, "sales")
    tuned.load_array(
        data,
        DirectionalTiling(salescube.partitions_3p(), 64 * 1024),
        origin=(1, 1, 1),
    )
    engine = QueryEngine(database)

    # Subaggregations: total units per (month, class, district) triple.
    subaggregations = [
        ("Feb, class 2, district 2", "[32:59,28:42,28:35]"),
        ("July, class 1, district 4", "[182:212,1:27,42:59]"),
        ("Dec year 2, class 3, district 8", "[701:730,43:60,98:100]"),
    ]
    print(f"\n{'Sub-aggregation':35s} {'scheme':12s} "
          f"{'sum':>12s} {'tiles':>5s} {'amp':>5s} {'ms':>8s}")
    for label, region in subaggregations:
        for coll, scheme in (("reg_cubes", "regular"), ("dir_cubes", "directional")):
            database.reset_clock()
            result = execute(
                engine, f"SELECT add_cells(c{region}) FROM {coll} AS c"
            )[0]
            timing = result.timing
            print(
                f"{label:35s} {scheme:12s} {result.scalar:12d} "
                f"{timing.tiles_read:5d} {timing.read_amplification:5.2f} "
                f"{timing.t_totalcpu:8.1f}"
            )
        print()

    print("Directional tiling turns each subaggregation into whole-tile")
    print("reads (amplification 1.0); the regular scheme pays for cells")
    print("outside the category boundaries on every aggregate.")

    # Full roll-up: every (month, class, district) sub-aggregate at once.
    from repro.query.olap import aggregate_by_category

    rollup = aggregate_by_category(
        tuned, salescube.partitions_3p(), op="add_cells"
    )
    print(f"\nFull roll-up: {rollup.values.shape} sub-aggregates "
          f"(months x classes x districts) in "
          f"{rollup.timing.t_totalcpu / 1000:.1f} s simulated, "
          f"amplification {rollup.timing.read_amplification:.2f}")
    print(f"Peak cell: {rollup.values.max():.0f} units "
          f"(grand total {rollup.values.sum():.0f})")


if __name__ == "__main__":
    main()
