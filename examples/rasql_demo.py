#!/usr/bin/env python3
"""Tour of the mini-RasQL query language.

Covers the statement forms the storage manager's evaluation used: whole
objects, trims with open bounds, dimension-dropping slices, and the
condenser (aggregate) functions — each annotated with its access type
from the paper's Section 5.1 model.

Run:  python examples/rasql_demo.py
"""

import numpy as np

from repro import (
    CutsTiling,
    Database,
    MInterval,
    QueryEngine,
    classify,
    execute,
    mdd_type,
)


def main() -> None:
    # A small 3-D time series volume: 48 half-hourly steps, 20 x 20 grid.
    volume_type = mdd_type("Temperature", "double", "[0:47,0:19,0:19]")
    steps = np.linspace(10, 30, 48)[:, None, None]
    pattern = np.fromfunction(
        lambda y, x: np.sin(y / 3.0) + np.cos(x / 3.0), (20, 20)
    )[None, :, :]
    volume = (steps + 5 * pattern).astype(np.float64)

    database = Database()
    grid = database.create_object("grids", volume_type, "day-2026-07-06")
    # Accesses sweep time step by step -> cuts along axis 0 (Figure 4).
    grid.load_array(volume, CutsTiling(axis=0, max_tile_size=16 * 1024))
    engine = QueryEngine(database)
    current_domain = grid.current_domain

    statements = [
        ("whole object (type a)", "SELECT g FROM grids AS g"),
        ("subarray trim (type b)", "SELECT g[10:20, 5:14, 5:14] FROM grids AS g"),
        ("partial ranges (type c)", "SELECT g[10:20, *:*, *:*] FROM grids AS g"),
        ("section / slice (type d)", "SELECT g[24, *:*, *:*] FROM grids AS g"),
        ("average over a dice", "SELECT avg_cells(g[0:23, 0:9, 0:9]) FROM grids AS g"),
        ("peak temperature", "SELECT max_cells(g) FROM grids AS g"),
        ("cells above zero", "SELECT count_cells(g) FROM grids AS g"),
        ("induced: to Fahrenheit", "SELECT g[24, *:*, *:*] * 1.8 + 32 FROM grids AS g"),
        ("induced comparison", "SELECT count_cells(g[24,*:*,*:*] > 25) FROM grids AS g"),
        ("condenser arithmetic", "SELECT add_cells(g) / count_cells(g >= -100) FROM grids AS g"),
        ("filtered collection", "SELECT avg_cells(g) FROM grids AS g WHERE max_cells(g) > 20"),
    ]
    for label, statement in statements:
        result = execute(engine, statement)[0]
        if result.is_scalar:
            rendered = f"scalar {result.scalar:.2f}"
        else:
            rendered = f"array {result.value.shape}"
        print(f"{label:28s} {statement}")
        print(f"{'':28s} -> {rendered}  "
              f"[{result.timing.tiles_read} tiles, "
              f"{result.timing.t_totalcpu:.1f} ms]\n")

    # The access-model classification the engine logs for tuning:
    region = MInterval.parse("[10:20,*:*,*:*]")
    print(f"classify({region}, domain) = "
          f"{classify(region, current_domain).value}")


if __name__ == "__main__":
    main()
