#!/usr/bin/env python3
"""Areas-of-interest tiling on an RGB animation volume (paper Section 6.2).

A 121-frame animation is accessed mostly through two overlapping regions —
the main character's head and body, tracked across all frames.  Tiling
the volume around those areas makes the hot queries read zero foreign
bytes, at a price on unexpected access patterns.

Run:  python examples/animation_areas.py
"""

from repro import AreasOfInterestTiling, Database, RegularTiling
from repro.bench import animation


def main() -> None:
    print("Rendering the synthetic animation (121 frames, 6.8 MB RGB)...")
    video = animation.generate_animation()
    video_type = animation.animation_mdd_type()

    database = Database()
    regular = database.create_object("videos", video_type, "clip_regular")
    regular.load_array(video, RegularTiling(64 * 1024))
    tuned = database.create_object("videos", video_type, "clip_areas")
    tuned.load_array(
        video, AreasOfInterestTiling(animation.AREAS_OF_INTEREST, 256 * 1024)
    )

    queries = [
        ("a: head, all frames (hot)", animation.QUERIES["a"]),
        ("b: body, all frames (hot)", animation.QUERIES["b"]),
        ("c: first 61 frames (unexpected)", animation.QUERIES["c"]),
        ("d: whole array (unexpected)", animation.QUERIES["d"]),
    ]
    print(f"\n{'Query':34s} {'scheme':14s} {'tiles':>5s} "
          f"{'fetched MB':>10s} {'amp':>5s} {'ms':>8s}")
    for label, region in queries:
        for obj in (regular, tuned):
            database.reset_clock()
            _data, timing = obj.read(region)
            print(
                f"{label:34s} {obj.name:14s} {timing.tiles_read:5d} "
                f"{timing.bytes_read / 2**20:10.2f} "
                f"{timing.read_amplification:5.2f} {timing.t_totalcpu:8.1f}"
            )
        print()

    print("The tuned scheme wins the access pattern (queries a, b) and")
    print("pays on query c — the paper's measured trade-off (Table 6).")


if __name__ == "__main__":
    main()
